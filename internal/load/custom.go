package load

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/usecase"
)

// BufferSpec declares one frame buffer for a custom workload.
type BufferSpec struct {
	Name string
	Size int64
}

// StreamSpec declares one sequential stream of a custom workload stage.
type StreamSpec struct {
	Name string
	// Write selects the direction.
	Write bool
	// Buffer indexes the workload's BufferSpec list.
	Buffer int
	// Bytes is the per-frame payload.
	Bytes int64
	// Run is the per-channel bytes per stream visit (a multiple of the
	// 16-byte burst); the generator multiplies by the channel count.
	Run int64
}

// StageSpec declares one state of a custom load state machine.
type StageSpec struct {
	Name    string
	Streams []StreamSpec
}

// NewCustom builds a generator for an arbitrary staged workload: buffers are
// placed with the same bank-phase-rotating allocator the recording chain
// uses, and each stage's streams are interleaved proportionally at their
// declared run granularities. This is the extension point for workloads
// beyond the paper's recording chain (playback, synthetic traffic, ...).
func NewCustom(buffers []BufferSpec, stages []StageSpec, channels int, g dram.Geometry, cfg Config) (*Generator, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("load: %d channels", channels)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(buffers) == 0 {
		return nil, fmt.Errorf("load: no buffers")
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("load: no stages")
	}

	gen := &Generator{cfg: cfg, channels: channels, capacity: g.Bytes() * int64(channels)}
	al := newAllocator(channels, g)
	al.next = cfg.BaseAddress
	for _, b := range buffers {
		if b.Size <= 0 {
			return nil, fmt.Errorf("load: buffer %q with size %d", b.Name, b.Size)
		}
		gen.buffers = append(gen.buffers, al.alloc(b.Name, b.Size))
	}

	for si, sp := range stages {
		st := stage{id: usecase.StageID(si)}
		for _, sm := range sp.Streams {
			if sm.Buffer < 0 || sm.Buffer >= len(buffers) {
				return nil, fmt.Errorf("load: stage %q stream %q references buffer %d of %d",
					sp.Name, sm.Name, sm.Buffer, len(buffers))
			}
			if sm.Bytes < 0 {
				return nil, fmt.Errorf("load: stage %q stream %q with %d bytes", sp.Name, sm.Name, sm.Bytes)
			}
			if sm.Run < 16 || sm.Run%16 != 0 {
				return nil, fmt.Errorf("load: stage %q stream %q run %d (want multiple of 16)",
					sp.Name, sm.Name, sm.Run)
			}
			if sm.Bytes == 0 {
				continue
			}
			st.streams = append(st.streams, stream{
				name:  sm.Name,
				write: sm.Write,
				base:  gen.buffers[sm.Buffer].Base,
				bytes: sm.Bytes,
				run:   sm.Run * int64(channels),
			})
		}
		if len(st.streams) > 0 {
			gen.stages = append(gen.stages, st)
		}
	}
	if len(gen.stages) == 0 {
		return nil, fmt.Errorf("load: workload has no traffic")
	}
	return gen, nil
}

// NewPlayback builds the load generator for the playback (decode + display)
// use case, mapping its stages onto buffers and stream granularities the
// same way the recording chain is mapped.
func NewPlayback(pb usecase.PlaybackLoad, channels int, g dram.Geometry, cfg Config) (*Generator, error) {
	cfg.fillDefaults()
	f := pb.Profile.Format
	reconBytes := f.Pixels() * 3 / 2 // YUV420
	dispYUVBytes := pb.Params.Display.Pixels() * 2
	dispRGBBytes := pb.Params.Display.Pixels() * 3
	refs := pb.ReferenceFrames()

	buffers := []BufferSpec{
		{Name: "pb-card", Size: 1 << 20},
		{Name: "pb-video-es", Size: 1 << 20},
		{Name: "pb-audio-es", Size: 1 << 16},
	}
	refBase := len(buffers)
	for i := 0; i < refs; i++ {
		buffers = append(buffers, BufferSpec{Name: fmt.Sprintf("pb-reference-%d", i), Size: reconBytes})
	}
	recon := len(buffers)
	buffers = append(buffers,
		BufferSpec{Name: "pb-reconstructed", Size: reconBytes},
		BufferSpec{Name: "pb-display-yuv", Size: dispYUVBytes},
		BufferSpec{Name: "pb-display-rgb", Size: dispRGBBytes},
	)
	dispYUV, dispRGB := recon+1, recon+2

	rd := func(id usecase.PlaybackStageID) int64 { return pb.Stages[id].ReadBits.Bytes() }
	wr := func(id usecase.PlaybackStageID) int64 { return pb.Stages[id].WriteBits.Bytes() }

	dec := pb.Stages[usecase.PbVideoDecoder]
	vBytes := int64(float64(pb.Profile.Level.MaxBitrate) / float64(f.FPS) / 8)
	refTraffic := dec.ReadBits.Bytes() - vBytes
	if refTraffic < 0 {
		refTraffic = 0
	}
	decStreams := []StreamSpec{
		{Name: "dec-bs", Buffer: 1, Bytes: vBytes, Run: cfg.BitstreamRun},
	}
	for i := 0; i < refs; i++ {
		decStreams = append(decStreams, StreamSpec{
			Name: fmt.Sprintf("dec-ref%d", i), Buffer: refBase + i,
			Bytes: refTraffic / int64(refs), Run: cfg.RefRun,
		})
	}
	decStreams = append(decStreams, StreamSpec{
		Name: "dec-recon", Write: true, Buffer: recon, Bytes: wr(usecase.PbVideoDecoder), Run: cfg.CodingRun,
	})

	stages := []StageSpec{
		{Name: "memory card", Streams: []StreamSpec{
			{Name: "card-rd", Buffer: 0, Bytes: rd(usecase.PbMemoryCard), Run: cfg.BitstreamRun},
		}},
		{Name: "demultiplex", Streams: []StreamSpec{
			{Name: "demux-rd", Buffer: 0, Bytes: rd(usecase.PbDemultiplex), Run: cfg.BitstreamRun},
			{Name: "demux-wr-v", Write: true, Buffer: 1, Bytes: vBytes, Run: cfg.BitstreamRun},
			{Name: "demux-wr-a", Write: true, Buffer: 2, Bytes: wr(usecase.PbDemultiplex) - vBytes, Run: cfg.BitstreamRun},
		}},
		{Name: "video decoder", Streams: decStreams},
		{Name: "scale to display", Streams: []StreamSpec{
			{Name: "scale-rd", Buffer: recon, Bytes: rd(usecase.PbScaleToDisplay), Run: cfg.ImageRun},
			{Name: "scale-wr", Write: true, Buffer: dispYUV, Bytes: wr(usecase.PbScaleToDisplay), Run: cfg.ImageRun},
		}},
		{Name: "display ctrl", Streams: []StreamSpec{
			{Name: "disp-rd", Buffer: dispRGB, Bytes: rd(usecase.PbDisplayCtrl), Run: cfg.ImageRun},
		}},
		{Name: "audio decoder", Streams: []StreamSpec{
			{Name: "audio-rd", Buffer: 2, Bytes: rd(usecase.PbAudioDecoder), Run: cfg.BitstreamRun},
		}},
	}
	return NewCustom(buffers, stages, channels, g, cfg)
}

// NewViewfinder builds the load generator for the viewfinder (preview)
// use case.
func NewViewfinder(vf usecase.ViewfinderLoad, channels int, g dram.Geometry, cfg Config) (*Generator, error) {
	cfg.fillDefaults()
	n := vf.Format.Pixels()
	buffers := []BufferSpec{
		{Name: "vf-sensor", Size: n * 2},
		{Name: "vf-preprocessed", Size: n * 2},
		{Name: "vf-yuv", Size: n * 2},
		{Name: "vf-display-yuv", Size: vf.Params.Display.Pixels() * 2},
		{Name: "vf-display-rgb", Size: vf.Params.Display.Pixels() * 3},
	}
	rd := func(id usecase.ViewfinderStageID) int64 { return vf.Stages[id].ReadBits.Bytes() }
	wr := func(id usecase.ViewfinderStageID) int64 { return vf.Stages[id].WriteBits.Bytes() }
	stages := []StageSpec{
		{Name: "camera", Streams: []StreamSpec{
			{Name: "camera-wr", Write: true, Buffer: 0, Bytes: wr(usecase.VfCameraIF), Run: cfg.ImageRun},
		}},
		{Name: "preprocess", Streams: []StreamSpec{
			{Name: "pre-rd", Buffer: 0, Bytes: rd(usecase.VfPreprocess), Run: cfg.ImageRun},
			{Name: "pre-wr", Write: true, Buffer: 1, Bytes: wr(usecase.VfPreprocess), Run: cfg.ImageRun},
		}},
		{Name: "bayer to yuv", Streams: []StreamSpec{
			{Name: "b2y-rd", Buffer: 1, Bytes: rd(usecase.VfBayerToYUV), Run: cfg.ImageRun},
			{Name: "b2y-wr", Write: true, Buffer: 2, Bytes: wr(usecase.VfBayerToYUV), Run: cfg.ImageRun},
		}},
		{Name: "scale to display", Streams: []StreamSpec{
			{Name: "scale-rd", Buffer: 2, Bytes: rd(usecase.VfScaleToDisplay), Run: cfg.ImageRun},
			{Name: "scale-wr", Write: true, Buffer: 3, Bytes: wr(usecase.VfScaleToDisplay), Run: cfg.ImageRun},
		}},
		{Name: "display ctrl", Streams: []StreamSpec{
			{Name: "disp-rd", Buffer: 4, Bytes: rd(usecase.VfDisplayCtrl), Run: cfg.ImageRun},
		}},
	}
	return NewCustom(buffers, stages, channels, g, cfg)
}
