package memsys

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/probe"
	"repro/internal/units"
)

// TestDispatchEquivalence is the bit-identical guarantee for the dispatch
// engine, in the style of controller.TestResetEquivalence: across randomized
// configurations (channels, interleave granularity, queue depth, write
// buffer, page policy, probes, faults) and randomized request streams, the
// serial per-burst reference, the serial coalesced path, the parallel
// persistent-worker engine, and the parallel per-burst path must produce
// identical Results, per-channel stats, latency histograms and probe event
// streams.
func TestDispatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(0xc0a1e5ce))

	// Walk the full scheduling-policy x datasheet matrix twice (the trial
	// index enumerates it deterministically), with the rest of the
	// configuration and the request stream randomized per trial. Every
	// combination must agree across all four dispatch variants — in
	// particular, coalesce-unsafe policies must fall back to the per-burst
	// reference schedule on every path.
	policies := controller.Policies()
	devices := dram.Devices()
	trials := 2 * len(policies) * len(devices)
	for trial := 0; trial < trials; trial++ {
		policy := policies[trial%len(policies)]
		device := devices[(trial/len(policies))%len(devices)]
		channels := []int{1, 2, 3, 4, 8}[rng.Intn(5)]
		// Interleave granularities must be multiples of the device's burst
		// (16 bytes for the paper part, 64 for the modern x16 BL16 parts).
		burst := int64(device.Geometry.WordBits/8) * int64(device.Geometry.BurstLength)
		cfg := Config{
			Channels:              channels,
			Freq:                  device.Frequencies[rng.Intn(len(device.Frequencies))],
			Geometry:              device.Geometry,
			Timing:                device.Timing,
			Policy:                policy,
			PowerDown:             rng.Intn(2) == 0,
			RecordLatency:         rng.Intn(2) == 0,
			WriteBufferDepth:      []int{0, 0, 8, 32}[rng.Intn(4)],
			QueueDepth:            []int{0, 0, 4, 16}[rng.Intn(4)],
			RefreshPostpone:       rng.Intn(4),
			PrechargeOnIdle:       rng.Intn(2) == 0,
			InterleaveGranularity: []int64{0, burst, 2 * burst, 4 * burst, 16 * burst}[rng.Intn(5)],
		}
		if rng.Intn(4) == 0 {
			cfg.Mux = 1 // BRC
		}
		var plan *fault.Plan
		if rng.Intn(3) == 0 {
			plan = &fault.Plan{
				Seed:          rng.Uint64(),
				ReadErrorRate: float64(rng.Intn(3)) * 0.02,
				StallRate:     float64(rng.Intn(3)) * 0.01,
			}
			if channels > 1 && rng.Intn(2) == 0 {
				plan.DropChannel = rng.Intn(channels)
				plan.DropAtCycle = 1 + rng.Int63n(20000)
			}
			if !plan.Enabled() {
				plan = nil
			}
		}
		withProbe := rng.Intn(3) == 0

		// A request stream mixing large sequential runs (the coalescing
		// target), small unaligned transactions, reads and writes, and
		// occasional long arrival gaps (power-down and self-refresh).
		type streamReq = Request
		var reqs []streamReq
		arrival := int64(0)
		for i := 0; i < 60; i++ {
			switch rng.Intn(10) {
			case 0:
				arrival += 40000 + rng.Int63n(200000)
			case 1, 2, 3:
				arrival += rng.Int63n(500)
			}
			var bytes int64
			switch rng.Intn(3) {
			case 0:
				bytes = 1 + rng.Int63n(64) // sub-burst and unaligned
			case 1:
				bytes = 1 + rng.Int63n(4096)
			default:
				bytes = 1 + rng.Int63n(1<<18) // large sequential runs
			}
			reqs = append(reqs, streamReq{
				Write:   rng.Intn(3) == 0,
				Addr:    rng.Int63n(1 << 26),
				Bytes:   bytes,
				Arrival: arrival,
				Stream:  rng.Intn(4), // clients for the bank-partition map
			})
		}

		type variant struct {
			name       string
			parallel   bool
			noCoalesce bool
		}
		variants := []variant{
			{"serial per-burst", false, true},
			{"serial coalesced", false, false},
			{"parallel coalesced", true, false},
			{"parallel per-burst", true, true},
		}

		type outcome struct {
			res     Result
			recs    []*probe.Recorder
			lats    []interface{}
			latOK   bool
			failure error
		}
		runVariant := func(v variant) outcome {
			c := cfg
			c.Parallel = v.parallel
			c.ForceParallel = v.parallel
			c.NoCoalesce = v.noCoalesce
			if plan != nil {
				p := *plan
				c.Faults = &p
			}
			var recs []*probe.Recorder
			if withProbe {
				recs = make([]*probe.Recorder, channels)
				c.NewProbe = func(ch int) probe.Sink {
					recs[ch] = &probe.Recorder{}
					return recs[ch]
				}
			}
			sys, err := New(c)
			if err != nil {
				return outcome{failure: err}
			}
			res, err := sys.Run(NewSliceSource(reqs))
			if err != nil {
				return outcome{failure: err}
			}
			o := outcome{res: res, recs: recs, latOK: cfg.RecordLatency}
			if cfg.RecordLatency {
				for _, ch := range sys.Channels() {
					o.lats = append(o.lats, *ch.Latency())
				}
			}
			return o
		}

		ref := runVariant(variants[0])
		if ref.failure != nil {
			t.Fatalf("trial %d (cfg %+v): reference run: %v", trial, cfg, ref.failure)
		}
		for _, v := range variants[1:] {
			got := runVariant(v)
			if got.failure != nil {
				t.Fatalf("trial %d (cfg %+v): %s run: %v", trial, cfg, v.name, got.failure)
			}
			if !reflect.DeepEqual(got.res, ref.res) {
				t.Errorf("trial %d (cfg %+v, faults %v, probe %v): %s Result diverged from serial per-burst:\ngot:  %+v\nwant: %+v",
					trial, cfg, plan != nil, withProbe, v.name, got.res, ref.res)
			}
			if ref.latOK && !reflect.DeepEqual(got.lats, ref.lats) {
				t.Errorf("trial %d (cfg %+v): %s latency histograms diverged", trial, cfg, v.name)
			}
			if withProbe {
				for ch := range ref.recs {
					if !reflect.DeepEqual(got.recs[ch].Events, ref.recs[ch].Events) {
						t.Errorf("trial %d (cfg %+v): %s channel %d probe stream diverged (%d vs %d events)",
							trial, cfg, v.name, ch, len(got.recs[ch].Events), len(ref.recs[ch].Events))
					}
				}
			}
		}
		if t.Failed() {
			t.Fatalf("trial %d: stopping after first divergence", trial)
		}
	}
}

// TestCoalescedMatchesPerBurstAcrossGranularities pins the coalesced
// dispatch math itself: for every (channels, granularity) pair and a
// deliberately awkward set of address ranges (unaligned heads and tails,
// sub-chunk and multi-stripe spans), the run decomposition must cover
// exactly the bursts the per-burst router visits, in the same per-channel
// order.
func TestCoalescedMatchesPerBurstAcrossGranularities(t *testing.T) {
	for _, channels := range []int{1, 2, 3, 4, 8} {
		for _, gran := range []int64{16, 32, 48, 128, 1024} {
			cfg := PaperConfig(channels, 400*units.MHz)
			cfg.InterleaveGranularity = gran
			reqs := []Request{
				{Addr: 0, Bytes: 16},
				{Addr: 7, Bytes: 3},
				{Addr: 15, Bytes: 2},
				{Addr: gran - 1, Bytes: gran + 2},
				{Addr: gran * int64(channels), Bytes: gran * int64(channels) * 3},
				{Addr: 12345, Bytes: 54321, Write: true},
				{Addr: 1 << 20, Bytes: 1 << 16},
			}
			run := func(noCoalesce bool) Result {
				c := cfg
				c.NoCoalesce = noCoalesce
				sys, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.Run(NewSliceSource(reqs))
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(true)
			got := run(false)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%d ch, gran %d: coalesced diverged:\ngot:  %+v\nwant: %+v",
					channels, gran, got, want)
			}
		}
	}
}

// TestParallelEngineReuse exercises the persistent-worker engine across
// repeated Run/Reset cycles on one System — the benchmark loop shape — and
// checks against a fresh serial system each time.
func TestParallelEngineReuse(t *testing.T) {
	cfg := PaperConfig(4, 400*units.MHz)
	cfg.Parallel = true
	cfg.ForceParallel = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		reqs := []Request{{Addr: int64(i) * 64, Bytes: 1 << 19}}
		sys.Reset()
		got, err := sys.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		serial := PaperConfig(4, 400*units.MHz)
		ref, err := New(serial)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: parallel reuse diverged:\ngot:  %+v\nwant: %+v", i, got, want)
		}
	}
}

// TestRunErrorStopsEngine makes sure an invalid transaction mid-stream
// still terminates the persistent workers (the deferred stop path).
func TestRunErrorStopsEngine(t *testing.T) {
	cfg := PaperConfig(4, 400*units.MHz)
	cfg.Parallel = true
	cfg.ForceParallel = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Addr: 0, Bytes: 1 << 16}, {Addr: 64, Bytes: 0}}
	if _, err := sys.Run(NewSliceSource(reqs)); err == nil {
		t.Fatal("expected error for zero-byte transaction")
	}
	// A fresh Run on the same System must still work.
	sys.Reset()
	if _, err := sys.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 4096}})); err != nil {
		t.Fatal(err)
	}
}
