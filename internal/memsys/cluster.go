package memsys

import (
	"fmt"

	"repro/internal/units"
)

// ClusterSpec names one independent channel cluster and its size.
type ClusterSpec struct {
	Name     string
	Channels int
}

// Clustered partitions a large multi-channel memory into independent channel
// clusters, the organization the paper's conclusions propose for beyond-HD
// devices: "it may be necessary to divide very large multi-channel memories
// into independent channel clusters, each consisting of reasonable number
// of channels". Each cluster has its own interleave and address space and
// serves its own master; idle clusters can rest in deep power-down.
type Clustered struct {
	specs   []ClusterSpec
	systems []*System
}

// NewClustered builds the clusters. Every cluster inherits base's device,
// clock and policies; base.Channels is ignored (each spec sets its own).
func NewClustered(base Config, specs []ClusterSpec) (*Clustered, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("memsys: no clusters")
	}
	c := &Clustered{specs: append([]ClusterSpec(nil), specs...)}
	for _, spec := range specs {
		if spec.Channels <= 0 {
			return nil, fmt.Errorf("memsys: cluster %q with %d channels", spec.Name, spec.Channels)
		}
		cfg := base
		cfg.Channels = spec.Channels
		sys, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("memsys: cluster %q: %w", spec.Name, err)
		}
		c.systems = append(c.systems, sys)
	}
	return c, nil
}

// Specs returns the cluster layout.
func (c *Clustered) Specs() []ClusterSpec { return c.specs }

// Systems returns the per-cluster memory subsystems.
func (c *Clustered) Systems() []*System { return c.systems }

// TotalChannels returns the channel count across all clusters.
func (c *Clustered) TotalChannels() int {
	var n int
	for _, s := range c.specs {
		n += s.Channels
	}
	return n
}

// PeakBandwidth returns the aggregate theoretical bandwidth.
func (c *Clustered) PeakBandwidth() units.Bandwidth {
	var bw units.Bandwidth
	for _, s := range c.systems {
		bw += s.PeakBandwidth()
	}
	return bw
}

// ClusterResult pairs a cluster with its run result. A nil source leaves
// the cluster idle (zero result).
type ClusterResult struct {
	Spec   ClusterSpec
	Result Result
	Idle   bool
}

// Run drives each cluster with its own transaction source; sources[i] may
// be nil for an idle cluster. Clusters are fully independent, so they run
// in isolation and the slowest one defines the combined makespan.
func (c *Clustered) Run(sources []Source) ([]ClusterResult, error) {
	if len(sources) != len(c.systems) {
		return nil, fmt.Errorf("memsys: %d sources for %d clusters", len(sources), len(c.systems))
	}
	results := make([]ClusterResult, len(c.systems))
	for i, sys := range c.systems {
		results[i].Spec = c.specs[i]
		if sources[i] == nil {
			results[i].Idle = true
			continue
		}
		res, err := sys.Run(sources[i])
		if err != nil {
			return nil, fmt.Errorf("memsys: cluster %q: %w", c.specs[i].Name, err)
		}
		results[i].Result = res
	}
	return results, nil
}

// Makespan returns the longest cluster makespan of a run.
func Makespan(results []ClusterResult) units.Duration {
	var m units.Duration
	for _, r := range results {
		if r.Result.Time > m {
			m = r.Result.Time
		}
	}
	return m
}

// Reset restores every cluster.
func (c *Clustered) Reset() {
	for _, s := range c.systems {
		s.Reset()
	}
}

// Merge interleaves several transaction sources onto one memory,
// byte-balanced: each Next serves the source that has emitted the fewest
// bytes so far. This models concurrent use cases (the paper: "the system
// rarely runs only a single use case") sharing a fully interleaved memory.
func Merge(sources ...Source) Source {
	m := &mergeSource{}
	for _, s := range sources {
		if s != nil {
			m.entries = append(m.entries, mergeEntry{src: s})
		}
	}
	return m
}

type mergeEntry struct {
	src     Source
	emitted int64
	done    bool
}

type mergeSource struct {
	entries []mergeEntry
}

// Next implements Source.
func (m *mergeSource) Next() (Request, bool) {
	for {
		best := -1
		for i := range m.entries {
			if m.entries[i].done {
				continue
			}
			if best < 0 || m.entries[i].emitted < m.entries[best].emitted {
				best = i
			}
		}
		if best < 0 {
			return Request{}, false
		}
		req, ok := m.entries[best].src.Next()
		if !ok {
			m.entries[best].done = true
			continue
		}
		m.entries[best].emitted += req.Bytes
		return req, true
	}
}
