package memsys

import "repro/internal/channel"

// runOp is one dispatch unit bound for a specific channel: a run of
// sequential same-direction bursts sharing one arrival cycle. Per-burst
// dispatch (probes or faults attached) uses bursts == 1.
type runOp struct {
	write   bool
	local   int64
	bursts  int32
	stream  int32
	arrival int64
}

// batchCapFor sizes dispatch batches by channel count. With few channels
// the dispatcher feeds few workers, so each channel sees a large share of
// the op stream and bigger batches amortize the handoff cost; with many
// channels the same total in-flight footprint is split across more lanes.
// 4 channels reproduces the original fixed 1<<15 capacity.
func batchCapFor(channels int) int {
	c := (4 << 15) / channels
	if c < 1<<14 {
		c = 1 << 14
	}
	if c > 1<<17 {
		c = 1 << 17
	}
	return c
}

// chanWorker is one channel's persistent dispatch lane: a goroutine that
// lives for the whole Run, fed with reusable op batches through a
// single-producer single-consumer handoff. The dispatcher owns cur and
// spare; the worker owns whatever batch is in flight. Batches are reset on
// the dispatcher side only, after the worker's completion signal — the
// worker never mutates a batch, so no write ever races with the
// dispatcher's re-append.
type chanWorker struct {
	ch       *channel.Channel
	work     chan []runOp
	done     chan int64
	cur      []runOp // batch being filled by the dispatcher
	spare    []runOp // batch the worker last finished, ready for reuse
	inflight bool
}

// engine drives the channels from persistent per-channel workers. The
// engine state is embedded in the System and reused across Runs: the
// workers slice, both op batches per channel and both handoff channels
// are allocated on the first parallel Run and recycled afterwards, so a
// steady-state Run allocates nothing beyond its worker goroutines. Worker
// goroutines are spawned by startEngine and terminated by stop — a System
// parked in the subsystem pool keeps its batches but holds no goroutines.
type engine struct {
	workers  []chanWorker
	batchCap int
	last     int64 // max completion cycle seen across all channels
	running  bool
}

// startEngine launches one worker per channel on the System's persistent
// engine. Each channel is driven by exactly one goroutine for the
// engine's lifetime, so per-channel state (controller, probe sink, fault
// stream) needs no locking and the op order per channel is the dispatch
// order — the bit-identical guarantee.
func (s *System) startEngine() *engine {
	e := &s.eng
	if len(e.workers) != len(s.chans) {
		e.workers = make([]chanWorker, len(s.chans))
		e.batchCap = batchCapFor(len(s.chans))
		for i := range e.workers {
			w := &e.workers[i]
			w.work = make(chan []runOp, 1)
			w.done = make(chan int64, 1)
			// cur and spare start empty and grow on demand: coalesced
			// runs need a handful of ops per flush, so preallocating
			// batchCap entries would cost megabytes per System for
			// nothing. Per-burst dispatch (probes/faults) grows them
			// geometrically once and then recycles them for every
			// subsequent Run of this System.
		}
	}
	e.last = 0
	e.running = true
	for i := range e.workers {
		w := &e.workers[i]
		w.ch = s.chans[i] // re-bind: pool revival rebuilds the channels
		w.cur = w.cur[:0]
		w.inflight = false
		go workerLoop(w)
	}
	return e
}

// workerLoop chews batches until the nil poison pill, acknowledging it
// through done so stop can join the goroutine. A top-level function (not
// a closure) so spawning it allocates nothing.
func workerLoop(w *chanWorker) {
	for {
		batch := <-w.work
		if batch == nil {
			w.done <- 0
			return
		}
		var end int64
		for _, op := range batch {
			if e := w.ch.AccessRunStream(op.write, op.local, int(op.bursts), int(op.stream), op.arrival); e > end {
				end = e
			}
		}
		w.done <- end
	}
}

// dispatch queues one op for the channel, handing the batch to the worker
// when it fills.
func (e *engine) dispatch(ch int, op runOp) {
	w := &e.workers[ch]
	w.cur = append(w.cur, op)
	if len(w.cur) >= e.batchCap {
		e.submit(w)
	}
}

// submit hands the worker its next batch, first collecting (and recycling)
// the batch it is still chewing on. Receiving from done is the
// happens-before edge that makes the finished batch safe to reset and
// refill on the dispatcher side.
func (e *engine) submit(w *chanWorker) {
	if len(w.cur) == 0 {
		return
	}
	if m := activeEngineMeter.Load(); m != nil {
		m.batches.Inc()
		m.batchOps.Observe(float64(len(w.cur)))
	}
	if w.inflight {
		e.collect(w)
	}
	w.work <- w.cur
	w.inflight = true
	w.cur, w.spare = w.spare[:0], w.cur
}

// collect waits for the worker's in-flight batch and folds its completion
// cycle into the engine makespan.
func (e *engine) collect(w *chanWorker) {
	if end := <-w.done; end > e.last {
		e.last = end
	}
	w.inflight = false
}

// barrier drains every channel: all queued ops execute and all workers go
// idle. After it returns the dispatcher may touch channel state directly
// (stats, flush, fault re-routing).
func (e *engine) barrier() {
	for i := range e.workers {
		e.submit(&e.workers[i])
	}
	for i := range e.workers {
		w := &e.workers[i]
		if w.inflight {
			e.collect(w)
		}
	}
}

// stop drains outstanding work and terminates the workers, leaving the
// batches parked for the next Run. Idempotent, so Run can both defer it
// (error paths) and call it before reading stats.
func (e *engine) stop() {
	if !e.running {
		return
	}
	e.running = false
	e.barrier()
	for i := range e.workers {
		w := &e.workers[i]
		w.work <- nil
		<-w.done
	}
}
