package memsys

import "repro/internal/channel"

// runOp is one dispatch unit bound for a specific channel: a run of
// sequential same-direction bursts sharing one arrival cycle. Per-burst
// dispatch (probes or faults attached) uses bursts == 1.
type runOp struct {
	write   bool
	local   int64
	bursts  int32
	arrival int64
}

// batchOps is the dispatch batch capacity per channel. Coalesced runs pack
// whole transactions into single ops, so a batch covers far more traffic
// than the same capacity did under per-burst dispatch.
const batchOps = 1 << 15

// chanWorker is one channel's persistent dispatch lane: a goroutine that
// lives for the whole Run, fed with reusable op batches through a
// single-producer single-consumer handoff. The dispatcher owns cur and
// spare; the worker owns whatever batch is in flight. Batches are reset on
// the dispatcher side only, after the worker's completion signal — the
// worker never mutates a batch, so no write ever races with the
// dispatcher's re-append.
type chanWorker struct {
	ch       *channel.Channel
	work     chan []runOp
	done     chan int64
	cur      []runOp // batch being filled by the dispatcher
	spare    []runOp // batch the worker last finished, ready for reuse
	inflight bool
}

// engine drives the channels from persistent per-channel workers. One
// engine is created per parallel Run and stopped when the Run returns; the
// per-flush goroutine spawns, WaitGroup and ends-slice allocations of the
// old scheme are gone — steady state allocates nothing.
type engine struct {
	workers []chanWorker
	last    int64 // max completion cycle seen across all channels
	stopped bool
}

// startEngine launches one worker per channel. Each channel is driven by
// exactly one goroutine for the engine's lifetime, so per-channel state
// (controller, probe sink, fault stream) needs no locking and the op order
// per channel is the dispatch order — the bit-identical guarantee.
func startEngine(chans []*channel.Channel) *engine {
	e := &engine{workers: make([]chanWorker, len(chans))}
	for i := range chans {
		w := &e.workers[i]
		w.ch = chans[i]
		w.work = make(chan []runOp, 1)
		w.done = make(chan int64, 1)
		// cur and spare start empty and grow on demand: coalesced runs
		// need a handful of ops per flush, so preallocating batchOps
		// entries would cost megabytes per Run for nothing. Per-burst
		// dispatch (probes/faults) grows them geometrically once and
		// then recycles.
		go func(w *chanWorker) {
			for batch := range w.work {
				var end int64
				for _, op := range batch {
					if e := w.ch.AccessRun(op.write, op.local, int(op.bursts), op.arrival); e > end {
						end = e
					}
				}
				w.done <- end
			}
		}(w)
	}
	return e
}

// dispatch queues one op for the channel, handing the batch to the worker
// when it fills.
func (e *engine) dispatch(ch int, op runOp) {
	w := &e.workers[ch]
	w.cur = append(w.cur, op)
	if len(w.cur) >= batchOps {
		e.submit(w)
	}
}

// submit hands the worker its next batch, first collecting (and recycling)
// the batch it is still chewing on. Receiving from done is the
// happens-before edge that makes the finished batch safe to reset and
// refill on the dispatcher side.
func (e *engine) submit(w *chanWorker) {
	if len(w.cur) == 0 {
		return
	}
	if m := activeEngineMeter.Load(); m != nil {
		m.batches.Inc()
		m.batchOps.Observe(float64(len(w.cur)))
	}
	if w.inflight {
		e.collect(w)
	}
	w.work <- w.cur
	w.inflight = true
	w.cur, w.spare = w.spare[:0], w.cur
}

// collect waits for the worker's in-flight batch and folds its completion
// cycle into the engine makespan.
func (e *engine) collect(w *chanWorker) {
	if end := <-w.done; end > e.last {
		e.last = end
	}
	w.inflight = false
}

// barrier drains every channel: all queued ops execute and all workers go
// idle. After it returns the dispatcher may touch channel state directly
// (stats, flush, fault re-routing).
func (e *engine) barrier() {
	for i := range e.workers {
		e.submit(&e.workers[i])
	}
	for i := range e.workers {
		w := &e.workers[i]
		if w.inflight {
			e.collect(w)
		}
	}
}

// stop drains outstanding work and terminates the workers. Idempotent, so
// Run can both defer it (error paths) and call it before reading stats.
func (e *engine) stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.barrier()
	for i := range e.workers {
		close(e.workers[i].work)
	}
}
