package memsys

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// engineMeter holds the parallel engine's instruments: batch dispatch
// volume and granularity. Counting happens at batch handoff (submit), not
// per op, so the enabled cost is two atomic updates per up-to-32768 ops
// and the disabled cost is one pointer load per handoff.
type engineMeter struct {
	batches  *metrics.Counter
	batchOps *metrics.Histogram
	runs     *metrics.Counter
}

// activeEngineMeter is the process-wide engine meter, nil when disabled.
var activeEngineMeter atomic.Pointer[engineMeter]

// EnableMetrics registers the engine instruments in r and starts
// counting; nil disables. Normally called through core.EnableMetrics.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		activeEngineMeter.Store(nil)
		return
	}
	activeEngineMeter.Store(&engineMeter{
		batches:  r.Counter("memsys_batches_dispatched_total"),
		batchOps: r.Histogram("memsys_batch_ops", metrics.SizeBuckets),
		runs:     r.Counter("memsys_runs_total"),
	})
}
