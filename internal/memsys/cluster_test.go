package memsys

import (
	"testing"

	"repro/internal/units"
)

func TestNewClusteredValidates(t *testing.T) {
	base := PaperConfig(0, 400*units.MHz)
	if _, err := NewClustered(base, nil); err == nil {
		t.Error("expected empty-cluster error")
	}
	if _, err := NewClustered(base, []ClusterSpec{{Name: "a", Channels: 0}}); err == nil {
		t.Error("expected channels error")
	}
	bad := PaperConfig(0, 50*units.MHz)
	if _, err := NewClustered(bad, []ClusterSpec{{Name: "a", Channels: 2}}); err == nil {
		t.Error("expected frequency error")
	}
}

func TestClusteredLayout(t *testing.T) {
	c, err := NewClustered(PaperConfig(0, 400*units.MHz), []ClusterSpec{
		{Name: "record", Channels: 4},
		{Name: "playback", Channels: 2},
		{Name: "spare", Channels: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalChannels(); got != 8 {
		t.Errorf("total channels = %d, want 8", got)
	}
	if got := c.PeakBandwidth().GBps(); got != 25.6 {
		t.Errorf("peak = %v GB/s, want 25.6", got)
	}
	if len(c.Systems()) != 3 || len(c.Specs()) != 3 {
		t.Errorf("layout accessors wrong: %d systems, %d specs", len(c.Systems()), len(c.Specs()))
	}
}

// A cluster behaves exactly like a standalone system of the same size.
func TestClusterMatchesStandalone(t *testing.T) {
	c, err := NewClustered(PaperConfig(0, 400*units.MHz), []ClusterSpec{
		{Name: "a", Channels: 2},
		{Name: "b", Channels: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Addr: 0, Bytes: 1 << 18}}
	results, err := c.Run([]Source{NewSliceSource(reqs), nil})
	if err != nil {
		t.Fatal(err)
	}
	if !results[1].Idle {
		t.Error("cluster b should be idle")
	}
	standalone, err := New(PaperConfig(2, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	want, err := standalone.Run(NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Result.Cycles != want.Cycles {
		t.Errorf("cluster makespan %d != standalone %d", results[0].Result.Cycles, want.Cycles)
	}
	if got := Makespan(results); got != want.Time {
		t.Errorf("Makespan = %v, want %v", got, want.Time)
	}
}

func TestClusteredRunValidatesSources(t *testing.T) {
	c, err := NewClustered(PaperConfig(0, 400*units.MHz), []ClusterSpec{{Name: "a", Channels: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil); err == nil {
		t.Error("expected source-count error")
	}
	if _, err := c.Run([]Source{NewSliceSource([]Request{{Bytes: -1}})}); err == nil {
		t.Error("expected request error surfaced with cluster name")
	}
}

func TestClusteredReset(t *testing.T) {
	c, err := NewClustered(PaperConfig(0, 400*units.MHz), []ClusterSpec{{Name: "a", Channels: 1}})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Addr: 0, Bytes: 4096}}
	r1, err := c.Run([]Source{NewSliceSource(reqs)})
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	r2, err := c.Run([]Source{NewSliceSource(reqs)})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Result.Cycles != r2[0].Result.Cycles {
		t.Error("reset did not restore cluster state")
	}
}

func TestMergeBalancesBytes(t *testing.T) {
	a := NewSliceSource([]Request{
		{Addr: 0, Bytes: 100}, {Addr: 100, Bytes: 100}, {Addr: 200, Bytes: 100},
	})
	b := NewSliceSource([]Request{
		{Addr: 1000, Bytes: 300},
	})
	m := Merge(a, b)
	// First pull: both at 0 emitted, source a (first) wins. Second pull:
	// a has 100 emitted, b has 0 -> b emits its 300. Then a drains.
	var order []int64
	for {
		r, ok := m.Next()
		if !ok {
			break
		}
		order = append(order, r.Addr)
	}
	want := []int64{0, 1000, 100, 200}
	if len(order) != len(want) {
		t.Fatalf("merged %d requests, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("merge order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestMergeSkipsNilAndEmpty(t *testing.T) {
	m := Merge(nil, NewSliceSource(nil), NewSliceSource([]Request{{Addr: 5, Bytes: 1}}))
	r, ok := m.Next()
	if !ok || r.Addr != 5 {
		t.Errorf("merge skipped content: %+v ok=%v", r, ok)
	}
	if _, ok := m.Next(); ok {
		t.Error("expected end of merged stream")
	}
	if _, ok := Merge().Next(); ok {
		t.Error("empty merge should end immediately")
	}
}
