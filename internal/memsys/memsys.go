// Package memsys assembles the paper's complete memory subsystem (Fig. 2):
// M parallel channels behind a 16-byte channel interleave. Master
// transactions of any size are split into minimum-burst chunks, distributed
// over the channels per Table II, and executed by the per-channel
// controllers; the subsystem reports the aggregate access time, traffic and
// per-channel statistics.
package memsys

import (
	"fmt"
	"runtime"

	"repro/internal/channel"
	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/fault"
	"repro/internal/interconnect"
	"repro/internal/mapping"
	"repro/internal/probe"
	"repro/internal/stats"
	"repro/internal/units"
)

// Config describes one memory subsystem configuration.
type Config struct {
	// Channels is the channel count M; the paper evaluates 1, 2, 4, 8.
	Channels int
	// Freq is the interface clock, 200-533 MHz.
	Freq units.Frequency
	// Geometry and Timing describe the bank cluster; zero values take the
	// paper's defaults.
	Geometry dram.Geometry
	Timing   dram.Timing
	// Mux selects RBC (default, used for all paper results) or BRC.
	Mux mapping.Multiplexing
	// Policy selects the page policy (paper default: open page).
	Policy controller.PagePolicy
	// PowerDown enables power-down after the first idle cycle.
	PowerDown bool
	// DRAMLink and OnChipLink are the two interconnects of Fig. 2; nil
	// latencies (zero values) mean the defaults.
	DRAMLink   *interconnect.Link
	OnChipLink *interconnect.Link
	// RecordLatency enables per-access latency histograms.
	RecordLatency bool
	// WriteBufferDepth > 0 enables the controllers' posted-write buffers
	// (see controller.Config.WriteBufferDepth). Zero is the paper's
	// baseline.
	WriteBufferDepth int
	// QueueDepth > 0 inserts a per-channel FR-FCFS reorder window (see
	// channel.Config.QueueDepth). Zero is the paper's in-order baseline.
	QueueDepth int
	// RefreshPostpone and PrechargeOnIdle forward to the controllers
	// (see controller.Config).
	RefreshPostpone int
	PrechargeOnIdle bool
	// InterleaveGranularity overrides the channel-interleaving chunk in
	// bytes (paper Table II: 16, the minimum burst). Zero uses the burst
	// size; larger values must be multiples of it.
	InterleaveGranularity int64
	// Parallel executes the channels on separate goroutines: one
	// persistent worker per channel for the duration of each Run, fed
	// with batched ops. Channels are fully independent, so results are
	// bit-identical to the serial run; this only changes wall-clock
	// simulation speed.
	Parallel bool
	// ForceParallel runs the parallel engine even on a single-CPU host,
	// where Run otherwise takes the serial path because goroutine
	// handoffs cannot buy wall-clock time without a second core. Results
	// are bit-identical regardless — this knob exists so the differential
	// oracle and the engine's own tests exercise the parallel code path
	// deterministically on any CI host.
	ForceParallel bool
	// NoCoalesce forces per-burst dispatch even where the burst-run fast
	// path applies (see Run). Results are bit-identical either way — this
	// is a debugging/CI knob, like core.MemoryConfig.Serial: the
	// equivalence property test diffs coalesced against per-burst runs.
	NoCoalesce bool
	// SynthCoalescedEvents keeps coalesced dispatch active even with
	// probes attached (see controller.Config.SynthCoalescedEvents): the
	// per-burst event stream is synthesized arithmetically and is
	// identical, event for event, to per-burst dispatch — the
	// internal/check differential oracle asserts exactly that. Leave unset
	// for ordinary observation.
	SynthCoalescedEvents bool
	// NewProbe, when non-nil, is called once per channel index at
	// construction and attaches the returned event sink to that channel's
	// controller (see internal/probe). A nil return leaves that channel
	// unobserved. With Parallel simulation each sink is driven from its
	// own goroutine, so per-channel sinks must not share unsynchronized
	// mutable state (probe.TimeSeries.Channel and probe.Trace.Channel
	// satisfy this).
	NewProbe func(channel int) probe.Sink
	// Faults, when non-nil and enabled, injects the deterministic seeded
	// fault plan (see internal/fault): channel dropout with re-interleave
	// over the survivors, thermal refresh derate, transient read errors
	// with ECC retry traffic, and controller stall jitter. Nil keeps every
	// hot path on the fault-free nil-check fast path, like NewProbe.
	Faults *fault.Plan
}

// PaperConfig returns the paper's baseline configuration at the given
// channel count and clock: RBC multiplexing, open page, aggressive
// power-down, default device.
func PaperConfig(channels int, freq units.Frequency) Config {
	return Config{
		Channels:  channels,
		Freq:      freq,
		Geometry:  dram.DefaultGeometry(),
		Timing:    dram.DefaultTiming(),
		Mux:       mapping.RBC,
		Policy:    controller.OpenPage,
		PowerDown: true,
	}
}

// Request is one master transaction: a sequential run of bytes read or
// written starting at a byte address. Arrival is the cycle the transaction
// becomes ready; saturated (access-time) runs use zero.
type Request struct {
	Write   bool
	Addr    int64
	Bytes   int64
	Arrival int64
	// Stream identifies the client the transaction belongs to (the load
	// model's pipeline streams). Policies that partition resources per
	// client (controller.BankPartition) key on it; every other policy
	// ignores it, and zero is always safe.
	Stream int
}

// Source supplies master transactions in program order.
type Source interface {
	// Next returns the next transaction, or ok=false at end of stream.
	Next() (req Request, ok bool)
}

// SliceSource adapts a slice of requests to a Source.
type SliceSource struct {
	reqs []Request
	i    int
}

// NewSliceSource returns a Source that replays reqs in order.
func NewSliceSource(reqs []Request) *SliceSource { return &SliceSource{reqs: reqs} }

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.i >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

// System is an instantiated memory subsystem.
type System struct {
	cfg        Config
	speed      dram.Speed
	interleave mapping.ChannelInterleave
	onchip     interconnect.Link
	chans      []*channel.Channel

	// Fault state. The dispatch clock is a deterministic lower bound on
	// the simulation time at the point of dispatch — the latest request
	// arrival seen, or the dispatched data-bus cycles spread evenly over
	// the live channels, whichever is larger — so the dropout trigger
	// depends only on the request stream, never on completion times, and
	// serial and parallel runs fail the channel at the identical burst.
	inj         *fault.Injector
	dropped     bool
	deadChannel int
	dropClock   int64
	survivors   []int                     // logical -> physical after dropout
	liveIlv     mapping.ChannelInterleave // Table II remap over M-1
	dispArrival int64                     // max request arrival dispatched
	dispBus     int64                     // data-bus cycles dispatched

	// eng is the persistent parallel-dispatch engine: batches and handoff
	// channels survive across Runs (and pool revivals), worker goroutines
	// do not — see startEngine/stop.
	eng engine
}

// New builds the subsystem, validating the configuration.
func New(cfg Config) (*System, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("memsys: %d channels", cfg.Channels)
	}
	if cfg.Geometry == (dram.Geometry{}) {
		cfg.Geometry = dram.DefaultGeometry()
	}
	if cfg.Timing == (dram.Timing{}) {
		cfg.Timing = dram.DefaultTiming()
	}
	speed, err := dram.Resolve(cfg.Geometry, cfg.Timing, cfg.Freq)
	if err != nil {
		return nil, err
	}
	dramLink := interconnect.DefaultDRAMLink()
	if cfg.DRAMLink != nil {
		dramLink = *cfg.DRAMLink
	}
	onchip := interconnect.DefaultOnChipLink()
	if cfg.OnChipLink != nil {
		onchip = *cfg.OnChipLink
	}
	if err := onchip.Validate(); err != nil {
		return nil, err
	}
	gran := cfg.InterleaveGranularity
	if gran == 0 {
		gran = cfg.Geometry.BurstBytes()
	}
	if gran%cfg.Geometry.BurstBytes() != 0 {
		return nil, fmt.Errorf("memsys: interleave granularity %d not a multiple of the %d-byte burst",
			gran, cfg.Geometry.BurstBytes())
	}
	interleave, err := mapping.NewChannelInterleave(cfg.Channels, gran)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, speed: speed, interleave: interleave, onchip: onchip, deadChannel: -1}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(*cfg.Faults, cfg.Channels)
		if err != nil {
			return nil, err
		}
		s.inj = inj
	}
	for i := 0; i < cfg.Channels; i++ {
		var sink probe.Sink
		if cfg.NewProbe != nil {
			sink = cfg.NewProbe(i)
		}
		var chInj *fault.ChannelInjector
		if s.inj != nil {
			chInj = s.inj.Channel(i)
		}
		ch, err := channel.New(channel.Config{
			Controller: controller.Config{
				Speed:                speed,
				Mux:                  cfg.Mux,
				Policy:               cfg.Policy,
				PowerDown:            cfg.PowerDown,
				RecordLatency:        cfg.RecordLatency,
				WriteBufferDepth:     cfg.WriteBufferDepth,
				RefreshPostpone:      cfg.RefreshPostpone,
				PrechargeOnIdle:      cfg.PrechargeOnIdle,
				Probe:                sink,
				SynthCoalescedEvents: cfg.SynthCoalescedEvents,
				Channel:              i,
				Faults:               chInj,
			},
			DRAMLink:   dramLink,
			QueueDepth: cfg.QueueDepth,
			Faults:     chInj,
		})
		if err != nil {
			return nil, err
		}
		s.chans = append(s.chans, ch)
	}
	return s, nil
}

// Config returns the subsystem configuration.
func (s *System) Config() Config { return s.cfg }

// Speed returns the resolved device timing.
func (s *System) Speed() dram.Speed { return s.speed }

// PeakBandwidth returns the aggregate theoretical bandwidth of all channels.
func (s *System) PeakBandwidth() units.Bandwidth {
	return units.Bandwidth(float64(s.cfg.Channels)) * s.speed.PeakBandwidth()
}

// Channels returns the instantiated channels.
func (s *System) Channels() []*channel.Channel { return s.chans }

// Result summarizes one simulation run.
type Result struct {
	// Cycles is the makespan: the DRAM cycle the last data beat of the
	// run left any channel's bus, including the on-chip return latency.
	Cycles int64
	// Time is the makespan in wall time — the paper's "access time".
	Time units.Duration
	// BytesRead and BytesWritten count the payload the master moved.
	BytesRead    int64
	BytesWritten int64
	// BusBytes counts bytes moved on the DRAM buses (whole bursts,
	// including padding for unaligned requests).
	BusBytes int64
	// Transactions counts master transactions; Bursts counts the
	// minimum-burst accesses they were split into.
	Transactions int64
	Bursts       int64
	// PerChannel holds each channel's statistics.
	PerChannel []stats.Channel
	// FailedChannel is the channel the fault plan dropped (-1 = none);
	// DropClock is the dispatch-clock cycle the dropout fired at. A
	// dropout persists across Run calls on the same System.
	FailedChannel int
	DropClock     int64
}

// Totals aggregates the per-channel statistics (counts summed, makespan
// maxed).
func (r Result) Totals() stats.Channel {
	var t stats.Channel
	for _, c := range r.PerChannel {
		t.Add(c)
	}
	return t
}

// Bandwidth returns the payload bandwidth achieved over the makespan.
func (r Result) Bandwidth() units.Bandwidth {
	if r.Time <= 0 {
		return 0
	}
	return units.Bandwidth(float64(r.BytesRead+r.BytesWritten) / r.Time.Seconds())
}

// BusUtilization returns the mean fraction of the makespan each channel's
// data bus carried data.
func (r Result) BusUtilization() float64 {
	if r.Cycles <= 0 || len(r.PerChannel) == 0 {
		return 0
	}
	var data int64
	for _, c := range r.PerChannel {
		data += c.DataBusCycles()
	}
	// Channels may finish at different times; normalize by the global
	// makespan to measure delivered fraction of peak.
	return float64(data) / float64(int64(len(r.PerChannel))*r.Cycles)
}

// Run executes all transactions from src and returns the aggregate result.
// Transactions are split into burst-sized chunks and dispatched to their
// channels in program order (from persistent per-channel workers when
// Parallel is set — same results, faster simulation).
//
// Because the channel interleave is a fixed stride, each transaction's
// bursts form one contiguous local run per channel; on an unobserved,
// fault-free system those runs are computed arithmetically and handed to
// channel.AccessRun in one call instead of once per 16-byte burst. With
// probes or faults attached (or NoCoalesce set) dispatch stays per-burst,
// so event streams and fault decision draws are untouched. Either way the
// per-channel op order — and therefore every reported number — is
// bit-identical.
func (s *System) Run(src Source) (Result, error) {
	if m := activeEngineMeter.Load(); m != nil {
		m.runs.Inc()
	}
	res := Result{PerChannel: make([]stats.Channel, len(s.chans)), FailedChannel: -1}
	burst := s.cfg.Geometry.BurstBytes()
	var last int64

	// On one CPU the engine's goroutine handoffs are pure overhead — the
	// serial path computes the identical result faster — so Parallel only
	// engages with real parallelism available (or when forced for tests).
	parallel := s.cfg.Parallel && len(s.chans) > 1 &&
		(s.cfg.ForceParallel || runtime.GOMAXPROCS(0) > 1)
	var eng *engine
	if parallel {
		eng = s.startEngine()
		defer eng.stop() // idempotent; drains workers on early error returns
	}
	// Coalescing additionally requires the scheduling policy to have
	// declared its command stream safe for the arithmetic fast path; any
	// non-baseline policy conservatively dispatches per burst, which also
	// preserves per-burst stream attribution for partitioning policies.
	coalesce := !s.cfg.NoCoalesce && s.inj == nil &&
		(!s.observed() || s.cfg.SynthCoalescedEvents) &&
		len(s.chans) > 0 && s.chans[0].Controller().CoalesceSafe()

	// Pending dropout from the fault plan (fires at most once per System).
	dropPending := s.inj != nil && !s.dropped && s.inj.Plan().DropAtCycle > 0

	for {
		req, ok := src.Next()
		if !ok {
			break
		}
		if req.Bytes <= 0 {
			return Result{}, fmt.Errorf("memsys: transaction with %d bytes", req.Bytes)
		}
		if req.Addr < 0 {
			return Result{}, fmt.Errorf("memsys: negative address %d", req.Addr)
		}
		res.Transactions++
		if req.Write {
			res.BytesWritten += req.Bytes
		} else {
			res.BytesRead += req.Bytes
		}
		if req.Arrival > s.dispArrival {
			s.dispArrival = req.Arrival
		}
		if dropPending && s.dispatchClock() >= s.inj.Plan().DropAtCycle {
			dropPending = false
			if parallel {
				eng.barrier() // drain in-flight work so events sit at the failure point
			}
			s.failChannel(s.inj.Plan().DropChannel)
		}
		arrival := s.onchip.Deliver(req.Arrival)
		// Split into whole bursts covering [Addr, Addr+Bytes).
		start := req.Addr - req.Addr%burst
		end := req.Addr + req.Bytes
		bursts := (end - start + burst - 1) / burst
		if coalesce {
			s.dispatchRuns(req.Write, start, bursts, arrival, eng, &last)
		} else {
			for a := start; a < end; a += burst {
				ch, local := s.route(a)
				if parallel {
					eng.dispatch(ch, runOp{write: req.Write, local: local, bursts: 1,
						stream: int32(req.Stream), arrival: arrival})
				} else {
					done := s.chans[ch].AccessStream(req.Write, local, req.Stream, arrival)
					if done > last {
						last = done
					}
				}
			}
		}
		s.dispBus += bursts * s.speed.BurstCycles
		res.Bursts += bursts
		res.BusBytes += bursts * burst
	}
	if parallel {
		eng.stop()
		if eng.last > last {
			last = eng.last
		}
	}
	for i, ch := range s.chans {
		// Drain any posted writes so the makespan covers all traffic.
		if done := ch.Flush(); done > last {
			last = done
		}
		res.PerChannel[i] = ch.Stats()
	}
	res.Cycles = s.onchip.Complete(last)
	if res.Bursts == 0 {
		res.Cycles = 0
	}
	res.Time = s.speed.CycleDuration(res.Cycles)
	if s.dropped {
		res.FailedChannel = s.deadChannel
		res.DropClock = s.dropClock
	}
	return res, nil
}

// observed reports whether any channel has a probe sink attached; coalesced
// dispatch is bypassed then so per-burst event streams stay identical.
func (s *System) observed() bool {
	for _, ch := range s.chans {
		if ch.Observed() {
			return true
		}
	}
	return false
}

// maxRunBursts caps one dispatch op's burst count (the batch op field is an
// int32); longer runs split with no observable effect.
const maxRunBursts = 1 << 30

// dispatchRuns splits the burst-aligned global range [start, start+bursts*B)
// into its per-channel contiguous local runs and dispatches each as one op.
// The stride interleave sends global chunk k to channel k mod M, and a
// channel's consecutive chunks are adjacent in its local address space, so
// each channel's share of a transaction is exactly one run: arithmetic over
// chunk indices replaces the per-burst route() loop.
func (s *System) dispatchRuns(write bool, start, bursts, arrival int64, eng *engine, last *int64) {
	burst := s.cfg.Geometry.BurstBytes()
	ilv := s.interleave
	g := ilv.Granularity() / burst // bursts per interleave chunk
	m := int64(ilv.Channels())
	s0 := start / burst // global burst index of the first burst
	k0 := s0 / g        // first and last chunk index touched
	k1 := (s0 + bursts - 1) / g
	for c := int64(0); c < m; c++ {
		kc := k0 + (c-k0%m+m)%m // channel c's first chunk in range
		if kc > k1 {
			continue
		}
		nc := (k1-kc)/m + 1 // its chunk count
		cnt := nc * g
		first := kc * g
		if first < s0 { // head chunk entered mid-way (only possible at k0)
			cnt -= s0 - first
			first = s0
		}
		if kc+(nc-1)*m == k1 { // tail chunk may end mid-way
			if chunkEnd := (k1 + 1) * g; chunkEnd > s0+bursts {
				cnt -= chunkEnd - (s0 + bursts)
			}
		}
		local := ilv.Local(first * burst)
		if eng == nil {
			if e := s.chans[c].AccessRun(write, local, int(cnt), arrival); e > *last {
				*last = e
			}
			continue
		}
		for cnt > maxRunBursts {
			eng.dispatch(int(c), runOp{write: write, local: local, bursts: maxRunBursts, arrival: arrival})
			local += maxRunBursts * burst
			cnt -= maxRunBursts
		}
		eng.dispatch(int(c), runOp{write: write, local: local, bursts: int32(cnt), arrival: arrival})
	}
}

// dispatchClock returns the deterministic dispatch-time lower bound the
// dropout trigger is evaluated against (see the System field comment).
func (s *System) dispatchClock() int64 {
	live := int64(len(s.chans))
	if s.dropped {
		live = int64(len(s.survivors))
	}
	if c := s.dispBus / live; c > s.dispArrival {
		return c
	}
	return s.dispArrival
}

// route maps a system byte address to its (physical channel, local address),
// honoring the post-dropout Table II remap over the survivors.
func (s *System) route(addr int64) (int, int64) {
	if !s.dropped {
		return s.interleave.Channel(addr), s.interleave.Local(addr)
	}
	return s.survivors[s.liveIlv.Channel(addr)], s.liveIlv.Local(addr)
}

// failChannel drops the channel permanently: subsequent traffic is
// re-interleaved over the M-1 survivors at the original granularity, and a
// channel-fail event is emitted on every observed channel so the failure
// point is visible on each trace track.
func (s *System) failChannel(dead int) {
	s.dropClock = s.dispatchClock() // before dropped flips: clock over M live channels
	s.dropped = true
	s.deadChannel = dead
	s.survivors = s.survivors[:0]
	for i := range s.chans {
		if i != dead {
			s.survivors = append(s.survivors, i)
		}
	}
	// len(survivors) >= 1 is guaranteed by fault.Plan.Validate.
	ilv, err := mapping.NewChannelInterleave(len(s.survivors), s.interleave.Granularity())
	if err != nil {
		// Unreachable: the original interleave validated the granularity.
		panic(fmt.Sprintf("memsys: survivor interleave: %v", err))
	}
	s.liveIlv = ilv
	for _, ch := range s.chans {
		if ch.Observed() {
			ch.Controller().EmitEvent(probe.Event{Kind: probe.KindChannelFail, Bank: -1,
				At: s.dropClock, End: s.dropClock, Aux: int64(dead)})
		}
	}
}

// Injector returns the instantiated fault injector (nil when the
// configuration carries no enabled fault plan).
func (s *System) Injector() *fault.Injector { return s.inj }

// FailedChannel returns the dropped channel index (-1 when none, or none
// yet) and the dispatch-clock cycle the dropout fired at.
func (s *System) FailedChannel() (int, int64) {
	if !s.dropped {
		return -1, 0
	}
	return s.deadChannel, s.dropClock
}

// Reset restores every channel to its initial state, revives a dropped
// channel, and rewinds the fault decision streams so a reset system replays
// the identical fault sequence.
func (s *System) Reset() {
	for _, ch := range s.chans {
		ch.Reset()
	}
	s.dropped = false
	s.deadChannel = -1
	s.dropClock = 0
	s.survivors = nil
	s.liveIlv = mapping.ChannelInterleave{}
	s.dispArrival = 0
	s.dispBus = 0
	if s.inj != nil {
		s.inj.Reset()
	}
}
