package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/controller"
	"repro/internal/dram"
	"repro/internal/interconnect"
	"repro/internal/mapping"
	"repro/internal/units"
)

func zeroLinks(cfg Config) Config {
	z := interconnect.Link{}
	cfg.DRAMLink = &z
	cfg.OnChipLink = &z
	return cfg
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Channels: 0, Freq: 400 * units.MHz}); err == nil {
		t.Error("expected channels error")
	}
	if _, err := New(PaperConfig(4, 100*units.MHz)); err == nil {
		t.Error("expected frequency error")
	}
	bad := PaperConfig(4, 400*units.MHz)
	bad.Mux = mapping.Multiplexing(9)
	if _, err := New(bad); err == nil {
		t.Error("expected multiplexing error")
	}
	badLink := PaperConfig(1, 400*units.MHz)
	badLink.OnChipLink = &interconnect.Link{RequestCycles: -1}
	if _, err := New(badLink); err == nil {
		t.Error("expected on-chip link error")
	}
}

func TestDefaultsFillIn(t *testing.T) {
	s, err := New(Config{Channels: 2, Freq: 400 * units.MHz})
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Channels != 2 {
		t.Errorf("channels = %d", s.Config().Channels)
	}
	if got := s.Speed().Geometry; got != dram.DefaultGeometry() {
		t.Errorf("geometry = %+v", got)
	}
	if len(s.Channels()) != 2 {
		t.Errorf("instantiated %d channels", len(s.Channels()))
	}
}

func TestPeakBandwidth(t *testing.T) {
	// 8 channels x 32 bit x 2 x 400 MHz = 25.6 GB/s, the paper's
	// XDR-comparable configuration.
	s, err := New(PaperConfig(8, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PeakBandwidth().GBps(); math.Abs(got-25.6) > 1e-9 {
		t.Errorf("peak = %v GB/s, want 25.6", got)
	}
}

func TestRunRejectsBadRequests(t *testing.T) {
	s, err := New(PaperConfig(1, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(NewSliceSource([]Request{{Bytes: 0}})); err == nil {
		t.Error("expected error for zero-byte transaction")
	}
	if _, err := s.Run(NewSliceSource([]Request{{Addr: -16, Bytes: 16}})); err == nil {
		t.Error("expected error for negative address")
	}
}

func TestEmptyRun(t *testing.T) {
	s, err := New(PaperConfig(2, 400*units.MHz))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(NewSliceSource(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Time != 0 || res.Bursts != 0 {
		t.Errorf("empty run result = %+v", res)
	}
	if res.Bandwidth() != 0 || res.BusUtilization() != 0 {
		t.Error("empty run should report zero rates")
	}
}

func TestBurstSplittingCountsWholeBursts(t *testing.T) {
	s, err := New(zeroLinks(PaperConfig(2, 400*units.MHz)))
	if err != nil {
		t.Fatal(err)
	}
	// 20 bytes starting at offset 10 touch bursts [0,16) and [16,32):
	// 2 bursts... the run extends to byte 30, still within the second
	// burst. An unaligned 40-byte run from 10 to 50 covers 4 bursts.
	res, err := s.Run(NewSliceSource([]Request{{Addr: 10, Bytes: 40}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bursts != 4 {
		t.Errorf("bursts = %d, want 4 (bytes 10..50 cover chunks 0..64)", res.Bursts)
	}
	if res.BusBytes != 64 {
		t.Errorf("bus bytes = %d, want 64", res.BusBytes)
	}
	if res.BytesRead != 40 || res.BytesWritten != 0 {
		t.Errorf("payload = %d/%d, want 40/0", res.BytesRead, res.BytesWritten)
	}
	if res.Transactions != 1 {
		t.Errorf("transactions = %d, want 1", res.Transactions)
	}
}

func TestInterleaveSpreadsLoadEvenly(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		s, err := New(zeroLinks(PaperConfig(m, 400*units.MHz)))
		if err != nil {
			t.Fatal(err)
		}
		// One large sequential transaction: "all the channels can be
		// used in a single master transaction" (paper section III).
		res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: int64(m) * 4096}}))
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.PerChannel {
			if got := c.Accesses(); got != 256 {
				t.Errorf("M=%d channel %d accesses = %d, want 256", m, i, got)
			}
		}
	}
}

func TestSequentialReadApproachesPeak(t *testing.T) {
	s, err := New(zeroLinks(PaperConfig(4, 400*units.MHz)))
	if err != nil {
		t.Fatal(err)
	}
	// 8 MB sequential read.
	res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 8 << 20}}))
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Bandwidth().GBps() / s.PeakBandwidth().GBps()
	if eff < 0.90 || eff > 1.0 {
		t.Errorf("sequential read efficiency = %.3f, want 0.90..1.0", eff)
	}
}

// Doubling the channel count roughly halves the access time (paper Fig. 3:
// "close to 2x speedup ... by double the number of exploited channels").
func TestChannelScaling(t *testing.T) {
	times := map[int]float64{}
	for _, m := range []int{1, 2, 4, 8} {
		s, err := New(zeroLinks(PaperConfig(m, 400*units.MHz)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 4 << 20}}))
		if err != nil {
			t.Fatal(err)
		}
		times[m] = res.Time.Seconds()
	}
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		ratio := times[pair[0]] / times[pair[1]]
		if ratio < 1.85 || ratio > 2.1 {
			t.Errorf("%dch/%dch speedup = %.2f, want ~2", pair[0], pair[1], ratio)
		}
	}
}

func TestMixedReadWriteResult(t *testing.T) {
	s, err := New(zeroLinks(PaperConfig(2, 400*units.MHz)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(NewSliceSource([]Request{
		{Addr: 0, Bytes: 4096},
		{Write: true, Addr: 1 << 20, Bytes: 4096},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead != 4096 || res.BytesWritten != 4096 {
		t.Errorf("payload = %d/%d", res.BytesRead, res.BytesWritten)
	}
	tot := res.Totals()
	if tot.Reads != 256 || tot.Writes != 256 {
		t.Errorf("totals = %+v", tot)
	}
	if res.BusUtilization() <= 0 || res.BusUtilization() > 1 {
		t.Errorf("utilization = %v", res.BusUtilization())
	}
}

func TestOnChipLatencyExtendsResult(t *testing.T) {
	base := zeroLinks(PaperConfig(1, 400*units.MHz))
	slow := PaperConfig(1, 400*units.MHz)
	slow.DRAMLink = &interconnect.Link{}
	slow.OnChipLink = &interconnect.Link{RequestCycles: 10, ResponseCycles: 10}

	run := func(cfg Config) int64 {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 256}}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if got, want := run(slow), run(base)+20; got != want {
		t.Errorf("slow on-chip makespan = %d, want %d", got, want)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	s, err := New(zeroLinks(PaperConfig(2, 400*units.MHz)))
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Addr: 0, Bytes: 1 << 16}}
	r1, err := s.Run(NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	r2, err := s.Run(NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Totals() != r2.Totals() {
		t.Errorf("rerun differs: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource([]Request{{Addr: 1, Bytes: 2}, {Addr: 3, Bytes: 4}})
	r1, ok := src.Next()
	if !ok || r1.Addr != 1 {
		t.Errorf("first = %+v ok=%v", r1, ok)
	}
	r2, ok := src.Next()
	if !ok || r2.Addr != 3 {
		t.Errorf("second = %+v ok=%v", r2, ok)
	}
	if _, ok := src.Next(); ok {
		t.Error("expected end of stream")
	}
}

// BRC mapping serializes a sequential stream into one bank and is never
// faster than RBC (paper section IV).
func TestRBCOutperformsBRCForStreaming(t *testing.T) {
	run := func(mux mapping.Multiplexing) float64 {
		cfg := zeroLinks(PaperConfig(1, 400*units.MHz))
		cfg.Mux = mux
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 1 << 20}}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Time.Seconds()
	}
	rbc, brc := run(mapping.RBC), run(mapping.BRC)
	if rbc >= brc {
		t.Errorf("RBC (%.3g s) should beat BRC (%.3g s) on a sequential stream", rbc, brc)
	}
}

// Closed-page policy is slower than open-page for the recording-style
// streaming load.
func TestOpenPageBeatsClosedPage(t *testing.T) {
	run := func(p controller.PagePolicy) int64 {
		cfg := zeroLinks(PaperConfig(1, 400*units.MHz))
		cfg.Policy = p
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 1 << 18}}))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if open, closed := run(controller.OpenPage), run(controller.ClosedPage); open >= closed {
		t.Errorf("open page (%d) should beat closed page (%d)", open, closed)
	}
}

// Parallel execution is bit-identical to serial: channels are independent.
func TestParallelMatchesSerial(t *testing.T) {
	reqs := []Request{
		{Addr: 0, Bytes: 1 << 18},
		{Write: true, Addr: 1 << 20, Bytes: 1 << 17},
		{Addr: 3 << 20, Bytes: 1 << 16, Arrival: 5000},
	}
	serialCfg := PaperConfig(4, 400*units.MHz)
	parallelCfg := serialCfg
	parallelCfg.Parallel = true
	parallelCfg.ForceParallel = true

	run := func(cfg Config) Result {
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(serialCfg), run(parallelCfg)
	if a.Cycles != b.Cycles {
		t.Errorf("makespans differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for i := range a.PerChannel {
		if a.PerChannel[i] != b.PerChannel[i] {
			t.Errorf("channel %d stats differ:\n serial  %+v\n parallel %+v",
				i, a.PerChannel[i], b.PerChannel[i])
		}
	}
	if a.Bursts != b.Bursts || a.BytesRead != b.BytesRead || a.BytesWritten != b.BytesWritten {
		t.Error("traffic accounting differs")
	}
}

// Conservation property: for arbitrary transaction lists, burst counts per
// channel sum to the total, bus bytes cover the payload, and makespan
// bounds every channel's busy time.
func TestRunConservationProperties(t *testing.T) {
	f := func(ops []uint32, mSel uint8) bool {
		channels := []int{1, 2, 4, 8}[mSel%4]
		sys, err := New(PaperConfig(channels, 400*units.MHz))
		if err != nil {
			return false
		}
		var reqs []Request
		var payload int64
		for _, op := range ops {
			r := Request{
				Write: op&1 == 1,
				Addr:  int64(op >> 8),
				Bytes: int64(op%2048) + 1,
			}
			payload += r.Bytes
			reqs = append(reqs, r)
		}
		res, err := sys.Run(NewSliceSource(reqs))
		if err != nil {
			return false
		}
		var chBursts int64
		for _, c := range res.PerChannel {
			chBursts += c.Accesses()
			if c.BusyCycles > res.Cycles {
				return false
			}
		}
		if chBursts != res.Bursts {
			return false
		}
		if res.BusBytes < payload {
			return false
		}
		if res.BytesRead+res.BytesWritten != payload {
			return false
		}
		return res.Transactions == int64(len(reqs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInterleaveGranularityOverride(t *testing.T) {
	cfg := PaperConfig(4, 400*units.MHz)
	cfg.InterleaveGranularity = 64
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A 64-byte transaction now lands on a single channel.
	res, err := sys.Run(NewSliceSource([]Request{{Addr: 0, Bytes: 64}}))
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, c := range res.PerChannel {
		if c.Accesses() > 0 {
			active++
		}
	}
	if active != 1 {
		t.Errorf("64B transaction touched %d channels at 64B granularity, want 1", active)
	}
	// Non-multiple granularity is rejected.
	bad := PaperConfig(4, 400*units.MHz)
	bad.InterleaveGranularity = 24
	if _, err := New(bad); err == nil {
		t.Error("expected granularity error")
	}
}
