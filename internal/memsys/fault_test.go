package memsys

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/units"
)

// streamReqs returns a sequential read stream of n bursts.
func streamReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Addr: int64(i) * 16, Bytes: 16}
	}
	return reqs
}

func TestChannelDropoutReroutesTraffic(t *testing.T) {
	cfg := PaperConfig(4, 400*units.MHz)
	cfg.Faults = &fault.Plan{Seed: 1, DropChannel: 2, DropAtCycle: 50}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := s.Run(NewSliceSource(streamReqs(4096)))
	if err != nil {
		t.Fatal(err)
	}
	if run.FailedChannel != 2 {
		t.Fatalf("FailedChannel = %d, want 2", run.FailedChannel)
	}
	if run.DropClock < 50 {
		t.Errorf("DropClock = %d, want >= plan cycle 50", run.DropClock)
	}
	if ch, at := s.FailedChannel(); ch != 2 || at != run.DropClock {
		t.Errorf("System.FailedChannel = (%d,%d), want (2,%d)", ch, at, run.DropClock)
	}
	// The dead channel saw only the pre-dropout slice of the run; the
	// survivors carried everything else.
	dead := run.PerChannel[2]
	if dead.Reads == 0 {
		t.Error("dead channel never saw the pre-dropout traffic")
	}
	for i, st := range run.PerChannel {
		if i == 2 {
			continue
		}
		if st.Reads <= dead.Reads {
			t.Errorf("survivor %d carried %d reads, dead carried %d — no rerouting visible",
				i, st.Reads, dead.Reads)
		}
	}
	var total int64
	for _, st := range run.PerChannel {
		total += st.Reads
	}
	if total != run.Bursts {
		t.Errorf("reads across channels %d, want all %d bursts", total, run.Bursts)
	}
}

func TestDropoutPersistsAcrossRuns(t *testing.T) {
	cfg := PaperConfig(2, 400*units.MHz)
	cfg.Faults = &fault.Plan{DropChannel: 1, DropAtCycle: 10}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(NewSliceSource(streamReqs(1024))); err != nil {
		t.Fatal(err)
	}
	before := s.Channels()[1].Stats()
	run2, err := s.Run(NewSliceSource(streamReqs(1024)))
	if err != nil {
		t.Fatal(err)
	}
	if run2.FailedChannel != 1 {
		t.Errorf("second run FailedChannel = %d, want 1 (dropout must persist)", run2.FailedChannel)
	}
	if after := s.Channels()[1].Stats(); after != before {
		t.Errorf("dead channel accumulated traffic after dropout: %+v -> %+v", before, after)
	}
}

func TestFaultySerialMatchesParallel(t *testing.T) {
	plan := &fault.Plan{
		Seed:          99,
		DropChannel:   0,
		DropAtCycle:   200,
		DerateAtCycle: 100,
		ReadErrorRate: 0.01,
		StallRate:     0.005,
	}
	results := make([]Result, 2)
	counters := make([]fault.Counters, 2)
	for i, parallel := range []bool{false, true} {
		cfg := PaperConfig(4, 400*units.MHz)
		cfg.Parallel = parallel
		cfg.ForceParallel = parallel
		p := *plan
		cfg.Faults = &p
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := s.Run(NewSliceSource(streamReqs(20000)))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = run
		counters[i] = s.Injector().Counters()
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("faulty serial and parallel runs diverged:\nserial:   %+v\nparallel: %+v",
			results[0], results[1])
	}
	if counters[0] != counters[1] {
		t.Errorf("fault counters diverged: %+v vs %+v", counters[0], counters[1])
	}
}

func TestFaultyResetReplaysRun(t *testing.T) {
	cfg := PaperConfig(4, 400*units.MHz)
	cfg.Faults = &fault.Plan{Seed: 7, DropChannel: 3, DropAtCycle: 80, ReadErrorRate: 0.02}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run(NewSliceSource(streamReqs(4096)))
	if err != nil {
		t.Fatal(err)
	}
	c1 := s.Injector().Counters()
	s.Reset()
	if ch, _ := s.FailedChannel(); ch != -1 {
		t.Fatalf("channel still failed after Reset")
	}
	second, err := s.Run(NewSliceSource(streamReqs(4096)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reset system did not replay the faulty run:\nfirst:  %+v\nsecond: %+v", first, second)
	}
	if c2 := s.Injector().Counters(); c1 != c2 {
		t.Errorf("fault counters diverged after reset: %+v vs %+v", c1, c2)
	}
}

func TestFaultFreePathUnchangedByNilPlan(t *testing.T) {
	base := PaperConfig(2, 400*units.MHz)
	withNil := base
	withNil.Faults = &fault.Plan{} // disabled plan must not instantiate an injector
	a, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(withNil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Injector() != nil {
		t.Fatal("disabled plan instantiated an injector")
	}
	ra, err := a.Run(NewSliceSource(streamReqs(2048)))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run(NewSliceSource(streamReqs(2048)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("disabled plan changed results")
	}
}
