// Package video defines the video-domain constants of the reproduced paper:
// frame formats, pixel encodings, the display used by the recording device,
// and the H.264/AVC levels whose memory load the paper evaluates.
//
// The paper evaluates the five HD-compatible H.264/AVC levels 3.1, 3.2, 4,
// 4.2 and 5.2 (Table I). Level limits come from ITU-T Rec. H.264 Table A-1;
// the maximum number of reference frames at a given resolution is derived
// from MaxDpbMbs exactly as the standard prescribes.
package video

import (
	"fmt"

	"repro/internal/units"
)

// PixelFormat describes how many bits one pixel occupies in memory at a given
// point of the recording pipeline.
type PixelFormat struct {
	Name       string
	BitsPerPel int
}

// Pixel formats used by the recording pipeline (paper Fig. 1).
var (
	// BayerRGB is the raw sensor format; the paper stores it in 16 bits/pel.
	BayerRGB = PixelFormat{Name: "Bayer RGB", BitsPerPel: 16}
	// YUV422 is the intermediate image-processing format, 16 bits/pel.
	YUV422 = PixelFormat{Name: "YUV422", BitsPerPel: 16}
	// YUV420 is the encoder-side format (reference and reconstructed
	// frames), 12 bits/pel.
	YUV420 = PixelFormat{Name: "YUV420", BitsPerPel: 12}
	// RGB888 is the display format, 24 bits/pel.
	RGB888 = PixelFormat{Name: "RGB888", BitsPerPel: 24}
)

// FrameFormat is a frame resolution with a frame rate.
type FrameFormat struct {
	Name   string
	Width  int // pixels
	Height int // pixels
	FPS    int // frames per second
}

// Pixels returns the number of pixels in one frame.
func (f FrameFormat) Pixels() int64 { return int64(f.Width) * int64(f.Height) }

// FrameBits returns the size of one frame stored in pf.
func (f FrameFormat) FrameBits(pf PixelFormat) units.Bits {
	return units.Bits(f.Pixels() * int64(pf.BitsPerPel))
}

// FramePeriod returns the real-time budget of a single frame.
func (f FrameFormat) FramePeriod() units.Duration {
	if f.FPS <= 0 {
		return 0
	}
	return units.DurationFromSeconds(1.0 / float64(f.FPS))
}

// String implements fmt.Stringer, e.g. "1920x1088@30".
func (f FrameFormat) String() string {
	return fmt.Sprintf("%dx%d@%d", f.Width, f.Height, f.FPS)
}

// MacroblockCols returns the frame width in 16-pixel macroblocks, rounded up.
func (f FrameFormat) MacroblockCols() int { return (f.Width + 15) / 16 }

// MacroblockRows returns the frame height in 16-pixel macroblocks, rounded up.
func (f FrameFormat) MacroblockRows() int { return (f.Height + 15) / 16 }

// Macroblocks returns the number of 16x16 macroblocks in one frame.
func (f FrameFormat) Macroblocks() int { return f.MacroblockCols() * f.MacroblockRows() }

// Frame formats evaluated in the paper. 1080-line content uses a height of
// 1088 (a whole number of macroblocks), as the paper's Table I does.
var (
	Format720p30  = FrameFormat{Name: "720p30", Width: 1280, Height: 720, FPS: 30}
	Format720p60  = FrameFormat{Name: "720p60", Width: 1280, Height: 720, FPS: 60}
	Format1080p30 = FrameFormat{Name: "1080p30", Width: 1920, Height: 1088, FPS: 30}
	Format1080p60 = FrameFormat{Name: "1080p60", Width: 1920, Height: 1088, FPS: 60}
	Format2160p30 = FrameFormat{Name: "2160p30", Width: 3840, Height: 2160, FPS: 30}
	// Format2160p60 is evaluated in Fig. 4 as the "doubtful" point beyond
	// every simulated memory configuration.
	Format2160p60 = FrameFormat{Name: "2160p60", Width: 3840, Height: 2160, FPS: 60}
)

// Display is the device display assumed by the use case: WVGA at 60 Hz
// presented in RGB888.
type Display struct {
	Width       int
	Height      int
	RefreshHz   int
	PixelFormat PixelFormat
}

// WVGA is the display of the paper's recording device.
var WVGA = Display{Width: 800, Height: 480, RefreshHz: 60, PixelFormat: RGB888}

// Pixels returns the number of display pixels.
func (d Display) Pixels() int64 { return int64(d.Width) * int64(d.Height) }

// FrameBits returns the size of one display frame.
func (d Display) FrameBits() units.Bits {
	return units.Bits(d.Pixels() * int64(d.PixelFormat.BitsPerPel))
}

// RefreshBitsPerSecond returns the display controller's constant read traffic.
func (d Display) RefreshBitsPerSecond() units.Bits {
	return units.Bits(int64(d.RefreshHz)) * d.FrameBits()
}

// Level describes one H.264/AVC level (ITU-T Rec. H.264 Table A-1).
type Level struct {
	// Number is the level identifier, e.g. "4.2".
	Number string
	// MaxBitrate is the maximum video bitstream rate for Baseline, Main
	// and Extended profiles in bits per second.
	MaxBitrate units.Bits
	// MaxDpbMbs bounds the decoded-picture-buffer size in macroblocks.
	MaxDpbMbs int
	// MaxMbsPerSecond bounds the macroblock processing rate.
	MaxMbsPerSecond int
	// MaxFrameSizeMbs bounds the frame size in macroblocks.
	MaxFrameSizeMbs int
}

// HD-compatible H.264/AVC levels evaluated in the paper's Table I.
var (
	Level31 = Level{Number: "3.1", MaxBitrate: 14 * units.Mbit, MaxDpbMbs: 18000, MaxMbsPerSecond: 108000, MaxFrameSizeMbs: 3600}
	Level32 = Level{Number: "3.2", MaxBitrate: 20 * units.Mbit, MaxDpbMbs: 20480, MaxMbsPerSecond: 216000, MaxFrameSizeMbs: 5120}
	Level40 = Level{Number: "4", MaxBitrate: 20 * units.Mbit, MaxDpbMbs: 32768, MaxMbsPerSecond: 245760, MaxFrameSizeMbs: 8192}
	Level42 = Level{Number: "4.2", MaxBitrate: 50 * units.Mbit, MaxDpbMbs: 34816, MaxMbsPerSecond: 522240, MaxFrameSizeMbs: 8704}
	Level52 = Level{Number: "5.2", MaxBitrate: 240 * units.Mbit, MaxDpbMbs: 184320, MaxMbsPerSecond: 2073600, MaxFrameSizeMbs: 36864}
)

// MaxDpbFrames returns the maximum number of decoded pictures the level's DPB
// can hold at the given frame size, capped at 16 per the standard.
func (l Level) MaxDpbFrames(f FrameFormat) int {
	mbs := f.Macroblocks()
	if mbs <= 0 {
		return 0
	}
	n := l.MaxDpbMbs / mbs
	if n > 16 {
		n = 16
	}
	return n
}

// Supports reports whether the level's frame-size and macroblock-rate limits
// admit the format.
func (l Level) Supports(f FrameFormat) bool {
	mbs := f.Macroblocks()
	return mbs <= l.MaxFrameSizeMbs && mbs*f.FPS <= l.MaxMbsPerSecond
}

// Profile ties a frame format to the H.264/AVC level the paper pairs it with.
type Profile struct {
	Level  Level
	Format FrameFormat
}

// EvaluatedProfiles lists the (level, format) pairs of the paper's Table I in
// table order, followed by the 2160p60 point of Fig. 4.
var EvaluatedProfiles = []Profile{
	{Level31, Format720p30},
	{Level32, Format720p60},
	{Level40, Format1080p30},
	{Level42, Format1080p60},
	{Level52, Format2160p30},
}

// ProfileFor returns the evaluated profile for a format name, e.g. "1080p30".
// The extra Fig. 4 point 2160p60 maps to level 5.2 (whose 60 fps variant the
// standard does not admit — the paper evaluates it anyway as the breaking
// point).
func ProfileFor(name string) (Profile, error) {
	for _, p := range EvaluatedProfiles {
		if p.Format.Name == name {
			return p, nil
		}
	}
	if name == Format2160p60.Name {
		return Profile{Level52, Format2160p60}, nil
	}
	return Profile{}, fmt.Errorf("video: unknown profile %q", name)
}
