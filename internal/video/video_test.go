package video

import (
	"testing"

	"repro/internal/units"
)

func TestFrameFormatPixels(t *testing.T) {
	tests := []struct {
		f    FrameFormat
		want int64
	}{
		{Format720p30, 921600},
		{Format1080p30, 2088960}, // 1920 x 1088, per the paper
		{Format2160p30, 8294400},
	}
	for _, tt := range tests {
		if got := tt.f.Pixels(); got != tt.want {
			t.Errorf("%v Pixels() = %d, want %d", tt.f, got, tt.want)
		}
	}
}

func TestFrameBits(t *testing.T) {
	// A 720p YUV422 frame is 921600 * 16 bits.
	if got := Format720p30.FrameBits(YUV422); got != units.Bits(14745600) {
		t.Errorf("FrameBits = %d, want 14745600", got)
	}
	// YUV420 uses 12 bits/pel.
	if got := Format720p30.FrameBits(YUV420); got != units.Bits(11059200) {
		t.Errorf("FrameBits(YUV420) = %d, want 11059200", got)
	}
}

func TestFramePeriod(t *testing.T) {
	if got := Format1080p30.FramePeriod().Milliseconds(); got < 33.3 || got > 33.4 {
		t.Errorf("30fps frame period = %v ms, want ~33.33", got)
	}
	if got := Format720p60.FramePeriod().Milliseconds(); got < 16.6 || got > 16.7 {
		t.Errorf("60fps frame period = %v ms, want ~16.67", got)
	}
	bad := FrameFormat{Width: 1, Height: 1, FPS: 0}
	if got := bad.FramePeriod(); got != 0 {
		t.Errorf("zero-fps frame period = %v, want 0", got)
	}
}

func TestMacroblocks(t *testing.T) {
	tests := []struct {
		f    FrameFormat
		want int
	}{
		{Format720p30, 3600},   // 80 x 45
		{Format1080p30, 8160},  // 120 x 68
		{Format2160p30, 32400}, // 240 x 135
	}
	for _, tt := range tests {
		if got := tt.f.Macroblocks(); got != tt.want {
			t.Errorf("%v Macroblocks() = %d, want %d", tt.f, got, tt.want)
		}
	}
	// Non multiple-of-16 dimensions round up.
	odd := FrameFormat{Width: 17, Height: 17}
	if got := odd.Macroblocks(); got != 4 {
		t.Errorf("17x17 Macroblocks() = %d, want 4", got)
	}
}

func TestMaxDpbFrames(t *testing.T) {
	tests := []struct {
		l    Level
		f    FrameFormat
		want int
	}{
		{Level31, Format720p30, 5},  // 18000/3600
		{Level32, Format720p60, 5},  // 20480/3600 = 5.68 -> 5
		{Level40, Format1080p30, 4}, // 32768/8160 = 4.01 -> 4
		{Level42, Format1080p60, 4}, // 34816/8160 = 4.26 -> 4
		{Level52, Format2160p30, 5}, // 184320/32400 = 5.68 -> 5
	}
	for _, tt := range tests {
		if got := tt.l.MaxDpbFrames(tt.f); got != tt.want {
			t.Errorf("level %s @%v MaxDpbFrames = %d, want %d", tt.l.Number, tt.f, got, tt.want)
		}
	}
	// Cap at 16 for tiny frames.
	tiny := FrameFormat{Width: 16, Height: 16}
	if got := Level52.MaxDpbFrames(tiny); got != 16 {
		t.Errorf("tiny frame MaxDpbFrames = %d, want 16", got)
	}
	zero := FrameFormat{}
	if got := Level31.MaxDpbFrames(zero); got != 0 {
		t.Errorf("zero frame MaxDpbFrames = %d, want 0", got)
	}
}

func TestLevelSupports(t *testing.T) {
	// Each evaluated profile must be self-consistent with the standard.
	for _, p := range EvaluatedProfiles {
		if !p.Level.Supports(p.Format) {
			t.Errorf("level %s does not support %v", p.Level.Number, p.Format)
		}
	}
	// Level 3.1 cannot process 1080p30.
	if Level31.Supports(Format1080p30) {
		t.Error("level 3.1 should not support 1080p30")
	}
	// Level 5.2 itself admits 2160p60 (32400 MBs x 60 fps < 2073600); the
	// paper's "doubtful" verdict on that format is a memory limit, not a
	// codec limit.
	if !Level52.Supports(Format2160p60) {
		t.Error("level 5.2 should support 2160p60 per H.264 Table A-1")
	}
	// Level 4.2 cannot process 2160p at any frame rate (frame too large).
	if Level42.Supports(Format2160p30) {
		t.Error("level 4.2 should not support 2160p30")
	}
}

func TestWVGADisplay(t *testing.T) {
	if got := WVGA.Pixels(); got != 384000 {
		t.Errorf("WVGA pixels = %d, want 384000", got)
	}
	if got := WVGA.FrameBits(); got != units.Bits(9216000) {
		t.Errorf("WVGA frame = %d bits, want 9216000", got)
	}
	// 60 Hz RGB888 refresh is ~553 Mb/s = ~69 MB/s, constant.
	if got := WVGA.RefreshBitsPerSecond().Megabits(); got != 552.96 {
		t.Errorf("WVGA refresh = %v Mb/s, want 552.96", got)
	}
}

func TestProfileFor(t *testing.T) {
	p, err := ProfileFor("1080p30")
	if err != nil {
		t.Fatal(err)
	}
	if p.Level.Number != "4" {
		t.Errorf("1080p30 pairs with level %s, want 4", p.Level.Number)
	}
	p, err = ProfileFor("2160p60")
	if err != nil {
		t.Fatal(err)
	}
	if p.Level.Number != "5.2" {
		t.Errorf("2160p60 pairs with level %s, want 5.2", p.Level.Number)
	}
	if _, err := ProfileFor("480i"); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestFrameFormatString(t *testing.T) {
	if got := Format1080p60.String(); got != "1920x1088@60" {
		t.Errorf("String() = %q", got)
	}
}

func TestEvaluatedProfileBitrates(t *testing.T) {
	// Max bitrates per H.264 Table A-1 (Baseline/Main/Extended).
	want := map[string]units.Bits{
		"3.1": 14 * units.Mbit,
		"3.2": 20 * units.Mbit,
		"4":   20 * units.Mbit,
		"4.2": 50 * units.Mbit,
		"5.2": 240 * units.Mbit,
	}
	for _, p := range EvaluatedProfiles {
		if p.Level.MaxBitrate != want[p.Level.Number] {
			t.Errorf("level %s bitrate = %v, want %v", p.Level.Number, p.Level.MaxBitrate, want[p.Level.Number])
		}
	}
}
