package video

import "testing"

func TestAllLevelsOrderedAndConsistent(t *testing.T) {
	if len(AllLevels) != 17 {
		t.Fatalf("levels = %d, want the 17 of Table A-1 up to 5.2", len(AllLevels))
	}
	for i := 1; i < len(AllLevels); i++ {
		prev, cur := AllLevels[i-1], AllLevels[i]
		// Capabilities are non-decreasing up the table.
		if cur.MaxBitrate < prev.MaxBitrate {
			t.Errorf("level %s bitrate below level %s", cur.Number, prev.Number)
		}
		if cur.MaxMbsPerSecond < prev.MaxMbsPerSecond {
			t.Errorf("level %s MB rate below level %s", cur.Number, prev.Number)
		}
		if cur.MaxFrameSizeMbs < prev.MaxFrameSizeMbs {
			t.Errorf("level %s frame size below level %s", cur.Number, prev.Number)
		}
	}
	// The DPB bound always admits at least one maximum-size frame.
	for _, l := range AllLevels {
		if l.MaxDpbMbs < l.MaxFrameSizeMbs {
			t.Errorf("level %s DPB (%d) below one frame (%d)", l.Number, l.MaxDpbMbs, l.MaxFrameSizeMbs)
		}
	}
}

func TestLevelByNumber(t *testing.T) {
	l, err := LevelByNumber("4.1")
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxBitrate != 50_000_000 {
		t.Errorf("level 4.1 bitrate = %v", l.MaxBitrate)
	}
	if _, err := LevelByNumber("9.9"); err == nil {
		t.Error("expected error for unknown level")
	}
}

func TestLevelFor(t *testing.T) {
	tests := []struct {
		f    FrameFormat
		want string
	}{
		// QCIF at 15 fps is the level-1 poster child.
		{FrameFormat{Width: 176, Height: 144, FPS: 15}, "1"},
		// VGA at 30 fps needs level 3.
		{FrameFormat{Width: 640, Height: 480, FPS: 30}, "3"},
		{Format720p30, "3.1"},
		{Format720p60, "3.2"},
		{Format1080p30, "4"},
		{Format1080p60, "4.2"},
		{Format2160p30, "5.1"}, // 5.1 already admits 2160p30
		{Format2160p60, "5.2"},
	}
	for _, tt := range tests {
		l, err := LevelFor(tt.f)
		if err != nil {
			t.Errorf("LevelFor(%v): %v", tt.f, err)
			continue
		}
		if l.Number != tt.want {
			t.Errorf("LevelFor(%v) = %s, want %s", tt.f, l.Number, tt.want)
		}
	}
	// 8K is beyond the table.
	if _, err := LevelFor(FrameFormat{Width: 7680, Height: 4320, FPS: 60}); err == nil {
		t.Error("expected error for 8K60")
	}
}

// The paper pairs 2160p30 with level 5.2 although 5.1 would conform; the
// evaluated profile must still be self-consistent.
func TestEvaluatedProfilesConform(t *testing.T) {
	for _, p := range EvaluatedProfiles {
		min, err := LevelFor(p.Format)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Level.Supports(p.Format) {
			t.Errorf("profile %v/%s does not conform", p.Format, p.Level.Number)
		}
		// The paper's level is at or above the minimum conforming one.
		if p.Level.MaxMbsPerSecond < min.MaxMbsPerSecond {
			t.Errorf("profile %v pairs with %s below minimum %s", p.Format, p.Level.Number, min.Number)
		}
	}
}
