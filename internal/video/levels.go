package video

import "fmt"

// AllLevels lists every H.264/AVC level of ITU-T Rec. H.264 Table A-1
// (Baseline/Main/Extended bitrates), in ascending order. The paper
// evaluates only the HD-compatible subset; the full table lets workloads
// target any format and lets LevelFor pick the minimum conforming level.
var AllLevels = []Level{
	{Number: "1", MaxBitrate: 64_000, MaxDpbMbs: 396, MaxMbsPerSecond: 1485, MaxFrameSizeMbs: 99},
	{Number: "1b", MaxBitrate: 128_000, MaxDpbMbs: 396, MaxMbsPerSecond: 1485, MaxFrameSizeMbs: 99},
	{Number: "1.1", MaxBitrate: 192_000, MaxDpbMbs: 900, MaxMbsPerSecond: 3000, MaxFrameSizeMbs: 396},
	{Number: "1.2", MaxBitrate: 384_000, MaxDpbMbs: 2376, MaxMbsPerSecond: 6000, MaxFrameSizeMbs: 396},
	{Number: "1.3", MaxBitrate: 768_000, MaxDpbMbs: 2376, MaxMbsPerSecond: 11880, MaxFrameSizeMbs: 396},
	{Number: "2", MaxBitrate: 2_000_000, MaxDpbMbs: 2376, MaxMbsPerSecond: 11880, MaxFrameSizeMbs: 396},
	{Number: "2.1", MaxBitrate: 4_000_000, MaxDpbMbs: 4752, MaxMbsPerSecond: 19800, MaxFrameSizeMbs: 792},
	{Number: "2.2", MaxBitrate: 4_000_000, MaxDpbMbs: 8100, MaxMbsPerSecond: 20250, MaxFrameSizeMbs: 1620},
	{Number: "3", MaxBitrate: 10_000_000, MaxDpbMbs: 8100, MaxMbsPerSecond: 40500, MaxFrameSizeMbs: 1620},
	Level31,
	Level32,
	Level40,
	{Number: "4.1", MaxBitrate: 50_000_000, MaxDpbMbs: 32768, MaxMbsPerSecond: 245760, MaxFrameSizeMbs: 8192},
	Level42,
	{Number: "5", MaxBitrate: 135_000_000, MaxDpbMbs: 110400, MaxMbsPerSecond: 589824, MaxFrameSizeMbs: 22080},
	{Number: "5.1", MaxBitrate: 240_000_000, MaxDpbMbs: 184320, MaxMbsPerSecond: 983040, MaxFrameSizeMbs: 36864},
	Level52,
}

// LevelByNumber returns the level with the given identifier, e.g. "4.1".
func LevelByNumber(number string) (Level, error) {
	for _, l := range AllLevels {
		if l.Number == number {
			return l, nil
		}
	}
	return Level{}, fmt.Errorf("video: unknown H.264 level %q", number)
}

// LevelFor returns the lowest level whose frame-size and macroblock-rate
// limits admit the format — the level a conforming encoder would signal.
func LevelFor(f FrameFormat) (Level, error) {
	for _, l := range AllLevels {
		if l.Supports(f) {
			return l, nil
		}
	}
	return Level{}, fmt.Errorf("video: no H.264 level supports %v", f)
}
