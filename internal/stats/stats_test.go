package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestChannelDerivedMetrics(t *testing.T) {
	c := Channel{
		Reads: 60, Writes: 40,
		RowHits: 80, RowMisses: 10, RowConflicts: 10,
		BusyCycles: 400, ReadBusCycles: 120, WriteBusCycles: 80,
	}
	if got := c.Accesses(); got != 100 {
		t.Errorf("Accesses = %d, want 100", got)
	}
	if got := c.DataBusCycles(); got != 200 {
		t.Errorf("DataBusCycles = %d, want 200", got)
	}
	if got := c.BusUtilization(); got != 0.5 {
		t.Errorf("BusUtilization = %v, want 0.5", got)
	}
	if got := c.RowHitRate(); got != 0.8 {
		t.Errorf("RowHitRate = %v, want 0.8", got)
	}
}

func TestChannelZeroValueMetrics(t *testing.T) {
	var c Channel
	if c.BusUtilization() != 0 || c.RowHitRate() != 0 {
		t.Error("zero channel should report zero rates")
	}
}

func TestChannelAdd(t *testing.T) {
	a := Channel{Reads: 1, BusyCycles: 100, ReadBusCycles: 10, PowerDownExits: 1}
	b := Channel{Writes: 2, BusyCycles: 250, WriteBusCycles: 20, Refreshes: 3}
	a.Add(b)
	if a.Reads != 1 || a.Writes != 2 || a.Refreshes != 3 {
		t.Errorf("Add counts wrong: %+v", a)
	}
	// BusyCycles is a makespan: Add takes the max, not the sum.
	if a.BusyCycles != 250 {
		t.Errorf("BusyCycles = %d, want max 250", a.BusyCycles)
	}
	if a.ReadBusCycles != 10 || a.WriteBusCycles != 20 {
		t.Errorf("bus cycles wrong: %+v", a)
	}
}

func TestChannelString(t *testing.T) {
	c := Channel{Reads: 5, Writes: 5, RowHits: 10}
	s := c.String()
	for _, want := range []string{"rd=5", "wr=5", "hit=1.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 22 {
		t.Errorf("Mean = %v, want 22", h.Mean())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d, want 100", h.Max())
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(5) // bucket <=8
	// Median of {0,1,2,5}: second sample boundary, bucket edge <=1 or <=2.
	if q := h.Quantile(0.5); q > 2 {
		t.Errorf("median upper bound = %d, want <=2", q)
	}
	if q := h.Quantile(1.0); q < 5 {
		t.Errorf("p100 upper bound = %d, want >=5", q)
	}
	if q := h.Quantile(-1); q != 1 {
		t.Errorf("clamped low quantile = %d, want 1", q)
	}
}

func TestHistogramNegativeSamplesClampToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("negative sample mishandled: %s", h.String())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(int64(v))
		}
		last := int64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		// The p100 bound covers the max.
		return len(vals) == 0 || h.Quantile(1.0) >= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if h.String() != "empty" {
		t.Errorf("empty String() = %q", h.String())
	}
	h.Observe(3)
	s := h.String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "<=4:1") {
		t.Errorf("String() = %q", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(7)
	b.Observe(500)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Errorf("merged count = %d, want 4", a.Count())
	}
	if a.Max() != 500 {
		t.Errorf("merged max = %d, want 500", a.Max())
	}
	if a.Mean() != 152 {
		t.Errorf("merged mean = %v, want 152", a.Mean())
	}
	a.Merge(nil) // no-op
	if a.Count() != 4 {
		t.Error("nil merge changed histogram")
	}
}
