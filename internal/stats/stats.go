// Package stats collects the counters and distributions the simulator
// reports: per-channel command counts, cycle-class accounting used by the
// power model, and latency histograms.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Channel accumulates the activity of one memory channel over a simulation.
// All cycle counts are in DRAM clock cycles.
type Channel struct {
	// Burst counts.
	Reads  int64
	Writes int64

	// Command counts.
	Activates  int64
	Precharges int64
	Refreshes  int64

	// Row-buffer outcome counts (open-page policy).
	RowHits      int64
	RowMisses    int64 // bank closed
	RowConflicts int64 // bank open with another row

	// Cycle classes.
	BusyCycles      int64 // channel makespan: first to last activity
	ReadBusCycles   int64 // cycles the data bus carried read data
	WriteBusCycles  int64 // cycles the data bus carried write data
	PowerDownCycles int64 // in-run idle cycles spent powered down (all kinds)
	// PrechargePDCycles is the subset of PowerDownCycles spent with all
	// banks closed (precharge power-down, the cheaper state).
	PrechargePDCycles int64
	PowerDownExits    int64
	// SelfRefreshCycles counts long idles spent in self-refresh; they are
	// not part of PowerDownCycles.
	SelfRefreshCycles int64
	// SelfRefreshEntries counts self-refresh entry events.
	SelfRefreshEntries int64
}

// Accesses returns the total burst count.
func (c Channel) Accesses() int64 { return c.Reads + c.Writes }

// DataBusCycles returns cycles with data on the bus in either direction.
func (c Channel) DataBusCycles() int64 { return c.ReadBusCycles + c.WriteBusCycles }

// BusUtilization returns the fraction of busy cycles with data on the bus —
// the channel efficiency relative to the theoretical peak.
func (c Channel) BusUtilization() float64 {
	if c.BusyCycles <= 0 {
		return 0
	}
	return float64(c.DataBusCycles()) / float64(c.BusyCycles)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (c Channel) RowHitRate() float64 {
	n := c.RowHits + c.RowMisses + c.RowConflicts
	if n == 0 {
		return 0
	}
	return float64(c.RowHits) / float64(n)
}

// Add accumulates other into c.
func (c *Channel) Add(other Channel) {
	c.Reads += other.Reads
	c.Writes += other.Writes
	c.Activates += other.Activates
	c.Precharges += other.Precharges
	c.Refreshes += other.Refreshes
	c.RowHits += other.RowHits
	c.RowMisses += other.RowMisses
	c.RowConflicts += other.RowConflicts
	if other.BusyCycles > c.BusyCycles {
		c.BusyCycles = other.BusyCycles
	}
	c.ReadBusCycles += other.ReadBusCycles
	c.WriteBusCycles += other.WriteBusCycles
	c.PowerDownCycles += other.PowerDownCycles
	c.PrechargePDCycles += other.PrechargePDCycles
	c.PowerDownExits += other.PowerDownExits
	c.SelfRefreshCycles += other.SelfRefreshCycles
	c.SelfRefreshEntries += other.SelfRefreshEntries
}

// String summarizes the counters for logs and debugging.
func (c Channel) String() string {
	return fmt.Sprintf("rd=%d wr=%d act=%d pre=%d ref=%d hit=%.2f util=%.2f busy=%d",
		c.Reads, c.Writes, c.Activates, c.Precharges, c.Refreshes,
		c.RowHitRate(), c.BusUtilization(), c.BusyCycles)
}

// Histogram is a power-of-two-bucketed latency histogram. Bucket i counts
// samples v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one non-negative sample; negative samples count as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1))
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// ObserveN records n identical samples in one update — the coalesced
// controller fast path observes whole same-row burst runs at once, and the
// result must match n individual Observe(v) calls exactly.
func (h *Histogram) ObserveN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	if v > 1 {
		i = bits.Len64(uint64(v - 1))
	}
	h.buckets[i] += n
	h.count += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// bucket upper edges.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			if i == 0 {
				return 1
			}
			return 1 << uint(i)
		}
	}
	return h.max
}

// Merge accumulates other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f max=%d [", h.count, h.Mean(), h.max)
	first := true
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "<=%d:%d", int64(1)<<uint(i), n)
	}
	b.WriteString("]")
	return b.String()
}
