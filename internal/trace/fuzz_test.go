package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadText exercises the text parser with arbitrary input. Invariants:
// Read never panics; when it accepts input, every parsed request satisfies
// the format's constraints (positive size, non-negative address), and
// Write/Read round-trips the parsed requests exactly — modulo the one
// canonicalization Write applies (a zero arrival is omitted).
func FuzzReadText(f *testing.F) {
	f.Add([]byte("R 0 16\n"))
	f.Add([]byte("W 1024 64 200\n"))
	f.Add([]byte("# comment\n\nr 16 16 0\nw 32 16\n"))
	f.Add([]byte("R 9223372036854775807 1\n"))
	f.Add([]byte("R 0 16 -5\n"))
	f.Add([]byte("X 0 16\n"))
	f.Add([]byte("R 0\n"))
	f.Add([]byte("R 0 16 1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; not panicking is the invariant
		}
		for i, r := range reqs {
			if r.Bytes <= 0 {
				t.Fatalf("request %d: accepted non-positive size %d", i, r.Bytes)
			}
			if r.Addr < 0 {
				t.Fatalf("request %d: accepted negative address %d", i, r.Addr)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, reqs); err != nil {
			t.Fatalf("Write rejected requests Read accepted: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read rejected Write's own output: %v", err)
		}
		if len(again) != len(reqs) {
			t.Fatalf("round trip changed count: %d -> %d", len(reqs), len(again))
		}
		if len(reqs) > 0 && !reflect.DeepEqual(again, reqs) {
			t.Fatalf("round trip changed requests:\nin:  %+v\nout: %+v", reqs, again)
		}
	})
}
