package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memsys"
)

func TestBinaryRoundTrip(t *testing.T) {
	reqs := sample()
	var b bytes.Buffer
	if err := WriteBinary(&b, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Errorf("request %d: %+v != %+v", i, got[i], reqs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		var reqs []memsys.Request
		var arr int64
		for _, op := range ops {
			arr += int64(op % 97)
			reqs = append(reqs, memsys.Request{
				Write:   op&1 == 1,
				Addr:    int64(op >> 3),
				Bytes:   int64(op%4096) + 1,
				Arrival: arr * int64(op&2) / 2, // sometimes zero
			})
		}
		var b bytes.Buffer
		if err := WriteBinary(&b, reqs); err != nil {
			return false
		}
		got, err := ReadBinary(&b)
		if err != nil {
			return false
		}
		if len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// A sequential stream compresses to a few bytes per record.
	var reqs []memsys.Request
	for i := 0; i < 1000; i++ {
		reqs = append(reqs, memsys.Request{Addr: int64(i) * 256, Bytes: 256})
	}
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, reqs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, reqs); err != nil {
		t.Fatal(err)
	}
	perRecord := float64(bin.Len()-8) / float64(len(reqs))
	if perRecord > 6 {
		t.Errorf("binary records average %.1f bytes, want <= 6", perRecord)
	}
	if bin.Len()*2 > txt.Len() {
		t.Errorf("binary (%d B) not substantially smaller than text (%d B)", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(strings.NewReader("bogusmag")); err == nil {
		t.Error("expected magic error")
	}
	// Truncated stream.
	var b bytes.Buffer
	if err := WriteBinary(&b, sample()); err != nil {
		t.Fatal(err)
	}
	trunc := b.Bytes()[:b.Len()-2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("expected truncation error")
	}
	// Unknown flags.
	bad := append(append([]byte{}, binaryMagic[:]...), 0x7F)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("expected flags error")
	}
	// Writer validates inputs.
	if err := WriteBinary(&bytes.Buffer{}, []memsys.Request{{Bytes: 0}}); err == nil {
		t.Error("expected size error")
	}
	if err := WriteBinary(&bytes.Buffer{}, []memsys.Request{{Addr: -1, Bytes: 1}}); err == nil {
		t.Error("expected address error")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteBinary(&b, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace read %d requests", len(got))
	}
}
