package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/memsys"
)

func sample() []memsys.Request {
	return []memsys.Request{
		{Addr: 0, Bytes: 64},
		{Write: true, Addr: 4096, Bytes: 128},
		{Addr: 1 << 20, Bytes: 16, Arrival: 100},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("request %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		var reqs []memsys.Request
		for _, op := range ops {
			reqs = append(reqs, memsys.Request{
				Write:   op&1 == 1,
				Addr:    int64(op >> 4),
				Bytes:   int64(op%1024) + 1,
				Arrival: int64(op % 7),
			})
		}
		var b strings.Builder
		if err := Write(&b, reqs); err != nil {
			return false
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			return false
		}
		if len(got) != len(reqs) {
			return false
		}
		for i := range reqs {
			if got[i] != reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 0 16\n  # indented comment\nW 16 32\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Write || !got[1].Write {
		t.Errorf("parsed %+v", got)
	}
}

func TestReadRejectsMalformedLines(t *testing.T) {
	bad := []string{
		"X 0 16",
		"R 0",
		"R 0 16 3 9",
		"R abc 16",
		"R 0 xyz",
		"R 0 16 zz",
		"R 0 0",
		"R -4 16",
	}
	for _, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestRecordAndTee(t *testing.T) {
	src := memsys.NewSliceSource(sample())
	recorded := Record(src)
	if len(recorded) != 3 {
		t.Fatalf("recorded %d requests", len(recorded))
	}

	var sink []memsys.Request
	teed := Tee(memsys.NewSliceSource(sample()), &sink)
	n := 0
	for {
		if _, ok := teed.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 || len(sink) != 3 {
		t.Errorf("tee forwarded %d, captured %d", n, len(sink))
	}
	for i := range sink {
		if sink[i] != sample()[i] {
			t.Errorf("tee request %d differs", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sample())
	if s.Transactions != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.BytesRead != 80 || s.BytesWritten != 128 {
		t.Errorf("bytes = %d/%d", s.BytesRead, s.BytesWritten)
	}
	if s.MinAddr != 0 || s.MaxAddr != (1<<20)+16 {
		t.Errorf("range = [%d, %d)", s.MinAddr, s.MaxAddr)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestTraceDrivesMemSys(t *testing.T) {
	text := "R 0 4096\nW 8192 4096\n"
	reqs, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := memsys.New(memsys.PaperConfig(2, 400e6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(memsys.NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead != 4096 || res.BytesWritten != 4096 {
		t.Errorf("trace run moved %d/%d bytes", res.BytesRead, res.BytesWritten)
	}
}
