// Package trace records and replays memory transaction streams. Traces let
// the simulator be driven by captured or hand-written workloads instead of
// the built-in load model, and let a load-model stream be inspected,
// stored, and replayed deterministically.
//
// The text format is one transaction per line:
//
//	R <addr> <bytes> [arrival]
//	W <addr> <bytes> [arrival]
//
// with decimal fields, '#' comments and blank lines ignored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/memsys"
)

// Record drains src into a slice, returning the requests in order.
func Record(src memsys.Source) []memsys.Request {
	var reqs []memsys.Request
	for {
		r, ok := src.Next()
		if !ok {
			return reqs
		}
		reqs = append(reqs, r)
	}
}

// Tee returns a Source that forwards src while appending every request to
// sink.
func Tee(src memsys.Source, sink *[]memsys.Request) memsys.Source {
	return &teeSource{src: src, sink: sink}
}

type teeSource struct {
	src  memsys.Source
	sink *[]memsys.Request
}

func (t *teeSource) Next() (memsys.Request, bool) {
	r, ok := t.src.Next()
	if ok {
		*t.sink = append(*t.sink, r)
	}
	return r, ok
}

// Write serializes requests to the text format. Requests are validated
// the same way WriteBinary validates them, so Write never produces a
// trace Read would reject, and every buffered write error — including one
// surfacing only at the final flush — is returned.
func Write(w io.Writer, reqs []memsys.Request) error {
	bw := bufio.NewWriter(w)
	for i, r := range reqs {
		if r.Bytes <= 0 {
			return fmt.Errorf("trace: request %d: non-positive size %d", i, r.Bytes)
		}
		if r.Addr < 0 {
			return fmt.Errorf("trace: request %d: negative address %d", i, r.Addr)
		}
		op := "R"
		if r.Write {
			op = "W"
		}
		var err error
		if r.Arrival != 0 {
			_, err = fmt.Fprintf(bw, "%s %d %d %d\n", op, r.Addr, r.Bytes, r.Arrival)
		} else {
			_, err = fmt.Fprintf(bw, "%s %d %d\n", op, r.Addr, r.Bytes)
		}
		if err != nil {
			return fmt.Errorf("trace: writing request %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// Read parses the text format into a request slice.
func Read(r io.Reader) ([]memsys.Request, error) {
	var reqs []memsys.Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || len(fields) > 4 {
			return nil, fmt.Errorf("trace: line %d: want 'R|W addr bytes [arrival]', got %q", lineNo, line)
		}
		var req memsys.Request
		switch fields[0] {
		case "R", "r":
		case "W", "w":
			req.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		var err error
		if req.Addr, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %v", lineNo, err)
		}
		if req.Bytes, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineNo, err)
		}
		if len(fields) == 4 {
			if req.Arrival, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad arrival: %v", lineNo, err)
			}
		}
		if req.Bytes <= 0 {
			return nil, fmt.Errorf("trace: line %d: non-positive size %d", lineNo, req.Bytes)
		}
		if req.Addr < 0 {
			return nil, fmt.Errorf("trace: line %d: negative address %d", lineNo, req.Addr)
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	return reqs, nil
}

// Summary aggregates a trace for reports.
type Summary struct {
	Transactions int
	Reads        int
	Writes       int
	BytesRead    int64
	BytesWritten int64
	MinAddr      int64
	MaxAddr      int64 // exclusive upper bound of touched addresses
}

// Summarize computes trace statistics.
func Summarize(reqs []memsys.Request) Summary {
	s := Summary{}
	for i, r := range reqs {
		s.Transactions++
		if r.Write {
			s.Writes++
			s.BytesWritten += r.Bytes
		} else {
			s.Reads++
			s.BytesRead += r.Bytes
		}
		if i == 0 || r.Addr < s.MinAddr {
			s.MinAddr = r.Addr
		}
		if end := r.Addr + r.Bytes; end > s.MaxAddr {
			s.MaxAddr = end
		}
	}
	return s
}
