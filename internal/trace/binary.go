package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/memsys"
)

// Binary trace format: a 8-byte magic header followed by one varint-encoded
// record per transaction. Each record is
//
//	flags  uvarint  bit0 = write, bit1 = arrival present
//	addr   uvarint  delta from the previous record's address (zigzag)
//	bytes  uvarint
//	arr    uvarint  delta from the previous arrival (zigzag, if present)
//
// Delta+varint coding keeps sequential-stream traces a few bytes per
// transaction, an order of magnitude smaller than the text form.
var binaryMagic = [8]byte{'m', 'c', 'm', 't', 'r', 'c', '0', '1'}

// WriteBinary serializes requests in the compact binary format.
func WriteBinary(w io.Writer, reqs []memsys.Request) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	var prevAddr, prevArr int64
	for _, r := range reqs {
		if r.Bytes <= 0 {
			return fmt.Errorf("trace: non-positive size %d", r.Bytes)
		}
		if r.Addr < 0 {
			return fmt.Errorf("trace: negative address %d", r.Addr)
		}
		var flags uint64
		if r.Write {
			flags |= 1
		}
		if r.Arrival != 0 {
			flags |= 2
		}
		n := binary.PutUvarint(buf[:], flags)
		n += binary.PutVarint(buf[n:], r.Addr-prevAddr)
		n += binary.PutUvarint(buf[n:], uint64(r.Bytes))
		if flags&2 != 0 {
			n += binary.PutVarint(buf[n:], r.Arrival-prevArr)
			prevArr = r.Arrival
		}
		prevAddr = r.Addr
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadBinary parses the compact binary format.
func ReadBinary(r io.Reader) ([]memsys.Request, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var reqs []memsys.Request
	var prevAddr, prevArr int64
	for {
		flags, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return reqs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: record %d flags: %w", len(reqs), err)
		}
		if flags > 3 {
			return nil, fmt.Errorf("trace: record %d unknown flags %#x", len(reqs), flags)
		}
		dAddr, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d address: %w", len(reqs), err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d size: %w", len(reqs), err)
		}
		req := memsys.Request{
			Write: flags&1 != 0,
			Addr:  prevAddr + dAddr,
			Bytes: int64(size),
		}
		if flags&2 != 0 {
			dArr, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d arrival: %w", len(reqs), err)
			}
			req.Arrival = prevArr + dArr
			prevArr = req.Arrival
		}
		if req.Bytes <= 0 {
			return nil, fmt.Errorf("trace: record %d non-positive size", len(reqs))
		}
		if req.Addr < 0 {
			return nil, fmt.Errorf("trace: record %d negative address", len(reqs))
		}
		prevAddr = req.Addr
		reqs = append(reqs, req)
	}
}
