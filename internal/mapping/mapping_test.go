package mapping

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

func TestTableIIInterleaving(t *testing.T) {
	// Paper Table II: with M channels and 16-byte granularity, addresses
	// 0..15 live in bank cluster 0, 16..31 in cluster 1, and address
	// 16*M wraps to cluster 0.
	for _, m := range []int{1, 2, 4, 8} {
		ci, err := NewChannelInterleave(m, 16)
		if err != nil {
			t.Fatal(err)
		}
		for a := int64(0); a < 16; a++ {
			if got := ci.Channel(a); got != 0 {
				t.Errorf("M=%d: addr %d -> channel %d, want 0", m, a, got)
			}
		}
		if m > 1 {
			if got := ci.Channel(16); got != 1 {
				t.Errorf("M=%d: addr 16 -> channel %d, want 1", m, got)
			}
		}
		if got := ci.Channel(16 * int64(m)); got != 0 {
			t.Errorf("M=%d: addr 16M -> channel %d, want 0 (wrap)", m, got)
		}
		if got := ci.Channel(16*int64(m) - 1); got != m-1 {
			t.Errorf("M=%d: addr 16M-1 -> channel %d, want %d", m, got, m-1)
		}
	}
}

func TestLocalAddressesAreDense(t *testing.T) {
	ci, err := NewChannelInterleave(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Walking the global address space, each channel must see a dense,
	// strictly increasing local address sequence.
	next := make(map[int]int64)
	for a := int64(0); a < 4*16*8; a++ {
		ch := ci.Channel(a)
		if got := ci.Local(a); got != next[ch] {
			t.Fatalf("addr %d: channel %d local %d, want %d", a, ch, got, next[ch])
		}
		next[ch]++
	}
}

func TestGlobalIsInverse(t *testing.T) {
	f := func(addr uint32, m uint8) bool {
		channels := []int{1, 2, 4, 8}[m%4]
		ci, err := NewChannelInterleave(channels, 16)
		if err != nil {
			return false
		}
		a := int64(addr)
		return ci.Global(ci.Channel(a), ci.Local(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewChannelInterleaveRejectsBadInputs(t *testing.T) {
	if _, err := NewChannelInterleave(0, 16); err == nil {
		t.Error("expected error for 0 channels")
	}
	if _, err := NewChannelInterleave(4, 0); err == nil {
		t.Error("expected error for 0 granularity")
	}
}

func TestRBCDecodeWalksBanksBeforeRows(t *testing.T) {
	g := dram.DefaultGeometry() // 2 KB rows, 4 banks
	bm, err := NewBankMapper(g, RBC)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential local addresses: columns first...
	l0 := bm.Decode(0)
	if l0 != (Location{Bank: 0, Row: 0, Column: 0}) {
		t.Errorf("Decode(0) = %+v", l0)
	}
	if got := bm.Decode(4); got.Column != 1 || got.Bank != 0 || got.Row != 0 {
		t.Errorf("Decode(4) = %+v, want column 1", got)
	}
	// ...then the next bank at a row boundary (2048 bytes)...
	if got := bm.Decode(2048); got.Bank != 1 || got.Row != 0 || got.Column != 0 {
		t.Errorf("Decode(2048) = %+v, want bank 1 row 0", got)
	}
	// ...and a new row only after all four banks (8192 bytes).
	if got := bm.Decode(8192); got.Bank != 0 || got.Row != 1 {
		t.Errorf("Decode(8192) = %+v, want bank 0 row 1", got)
	}
}

func TestBRCDecodeStaysInBank(t *testing.T) {
	g := dram.DefaultGeometry()
	bm, err := NewBankMapper(g, BRC)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential local addresses walk rows within bank 0.
	if got := bm.Decode(2048); got.Bank != 0 || got.Row != 1 {
		t.Errorf("Decode(2048) = %+v, want bank 0 row 1", got)
	}
	// Bank 1 starts only after a full bank (16 MiB).
	bankBytes := g.BankBytes()
	if got := bm.Decode(bankBytes); got.Bank != 1 || got.Row != 0 || got.Column != 0 {
		t.Errorf("Decode(bank size) = %+v, want bank 1 row 0", got)
	}
}

func TestDecodeWrapsModuloCapacity(t *testing.T) {
	g := dram.DefaultGeometry()
	for _, mux := range []Multiplexing{RBC, BRC} {
		bm, err := NewBankMapper(g, mux)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := bm.Decode(g.Bytes()+4096), bm.Decode(4096); got != want {
			t.Errorf("%v: wrap decode = %+v, want %+v", mux, got, want)
		}
		if got, want := bm.Decode(-4), bm.Decode(g.Bytes()-4); got != want {
			t.Errorf("%v: negative decode = %+v, want %+v", mux, got, want)
		}
	}
}

func TestEncodeIsInverseOfDecode(t *testing.T) {
	g := dram.DefaultGeometry()
	for _, mux := range []Multiplexing{RBC, BRC} {
		bm, err := NewBankMapper(g, mux)
		if err != nil {
			t.Fatal(err)
		}
		f := func(addr uint32) bool {
			// Word-aligned address within capacity.
			local := (int64(addr) * 4) % g.Bytes()
			return bm.Encode(bm.Decode(local)) == local
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", mux, err)
		}
	}
}

func TestDecodedCoordinatesInRange(t *testing.T) {
	g := dram.DefaultGeometry()
	for _, mux := range []Multiplexing{RBC, BRC} {
		bm, _ := NewBankMapper(g, mux)
		f := func(addr int64) bool {
			loc := bm.Decode(addr)
			return loc.Bank >= 0 && loc.Bank < g.Banks &&
				loc.Row >= 0 && loc.Row < g.Rows &&
				loc.Column >= 0 && loc.Column < g.Columns
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", mux, err)
		}
	}
}

func TestNewBankMapperRejectsBadInputs(t *testing.T) {
	g := dram.DefaultGeometry()
	g.Banks = 3
	if _, err := NewBankMapper(g, RBC); err == nil {
		t.Error("expected geometry error")
	}
	if _, err := NewBankMapper(dram.DefaultGeometry(), Multiplexing(7)); err == nil {
		t.Error("expected multiplexing error")
	}
}

func TestAddressMap(t *testing.T) {
	g := dram.DefaultGeometry()
	am, err := NewAddressMap(4, g, RBC)
	if err != nil {
		t.Fatal(err)
	}
	if got := am.CapacityBytes(); got != 4*g.Bytes() {
		t.Errorf("capacity = %d, want %d", got, 4*g.Bytes())
	}
	// Interleave granularity equals the burst size (16 bytes).
	if got := am.Interleave.Granularity(); got != 16 {
		t.Errorf("granularity = %d, want 16", got)
	}
	// Consecutive 16-byte chunks land on consecutive channels at the
	// same local coordinate region.
	ch0, loc0 := am.Decode(0)
	ch1, loc1 := am.Decode(16)
	if ch0 != 0 || ch1 != 1 {
		t.Errorf("channels = %d,%d, want 0,1", ch0, ch1)
	}
	if loc0 != loc1 {
		t.Errorf("locations differ: %+v vs %+v", loc0, loc1)
	}
}

func TestAddressMapRejectsBadInputs(t *testing.T) {
	if _, err := NewAddressMap(0, dram.DefaultGeometry(), RBC); err == nil {
		t.Error("expected channels error")
	}
	if _, err := NewAddressMap(4, dram.DefaultGeometry(), Multiplexing(9)); err == nil {
		t.Error("expected multiplexing error")
	}
}

func TestMultiplexingString(t *testing.T) {
	if RBC.String() != "RBC" || BRC.String() != "BRC" {
		t.Error("bad multiplexing names")
	}
	if got := Multiplexing(5).String(); got != "Multiplexing(5)" {
		t.Errorf("String() = %q", got)
	}
}
