package mapping

import (
	"testing"

	"repro/internal/dram"
)

// FuzzDecode exercises the full address map with arbitrary addresses and
// interleave shapes. Invariants: decoding is total (no panics, any int64),
// decoded coordinates stay inside the geometry, word-aligned in-capacity
// addresses round-trip through Encode, and the channel interleave's
// Global(Channel, Local) is the identity.
func FuzzDecode(f *testing.F) {
	f.Add(int64(0), 1, int64(16))
	f.Add(int64(12345678), 4, int64(16))
	f.Add(int64(-1), 2, int64(64))
	f.Add(int64(1)<<62, 8, int64(4096))
	f.Add(int64(16), 3, int64(16))
	f.Fuzz(func(t *testing.T, addr int64, channels int, granularity int64) {
		g := dram.DefaultGeometry()
		if granularity <= 0 || granularity > 1<<20 || granularity%g.BurstBytes() != 0 {
			granularity = g.BurstBytes()
		}
		if channels <= 0 || channels > 64 {
			channels = 4
		}
		ci, err := NewChannelInterleave(channels, granularity)
		if err != nil {
			t.Fatalf("valid interleave rejected: %v", err)
		}
		for _, mux := range []Multiplexing{RBC, BRC} {
			bm, err := NewBankMapper(g, mux)
			if err != nil {
				t.Fatal(err)
			}
			loc := bm.Decode(addr) // must not panic for any input
			if loc.Bank < 0 || loc.Bank >= g.Banks {
				t.Fatalf("%v: bank %d outside [0,%d)", mux, loc.Bank, g.Banks)
			}
			if loc.Row < 0 || loc.Row >= g.Rows {
				t.Fatalf("%v: row %d outside [0,%d)", mux, loc.Row, g.Rows)
			}
			if loc.Column < 0 || loc.Column >= g.Columns {
				t.Fatalf("%v: column %d outside [0,%d)", mux, loc.Column, g.Columns)
			}
			// Word-aligned addresses inside the cluster round-trip exactly.
			wordBytes := int64(g.WordBits) / 8
			if addr >= 0 && addr < g.Bytes() && addr%wordBytes == 0 {
				if back := bm.Encode(loc); back != addr {
					t.Fatalf("%v: Encode(Decode(%d)) = %d", mux, addr, back)
				}
			}
		}
		if addr >= 0 {
			ch := ci.Channel(addr)
			if ch < 0 || ch >= channels {
				t.Fatalf("channel %d outside [0,%d)", ch, channels)
			}
			local := ci.Local(addr)
			if local < 0 {
				t.Fatalf("negative local address %d for %d", local, addr)
			}
			if back := ci.Global(ch, local); back != addr {
				t.Fatalf("Global(Channel(%d), Local(%d)) = %d", addr, addr, back)
			}
		}
	})
}
