// Package mapping implements the paper's address decoding: byte addresses
// are first interleaved over the memory channels at 16-byte granularity
// (Table II), and the per-channel local address is then multiplexed onto
// bank, row and column using either the Row-Bank-Column (RBC) or
// Bank-Row-Column (BRC) scheme evaluated in section IV.
package mapping

import (
	"fmt"

	"repro/internal/dram"
)

// ChannelInterleave distributes byte addresses over M channels in
// granularity-sized chunks: addresses [0,G) go to channel 0, [G,2G) to
// channel 1, ..., [MG, MG+G) back to channel 0 (paper Table II).
type ChannelInterleave struct {
	channels    int
	granularity int64
}

// NewChannelInterleave builds the interleave. The paper's granularity is 16
// bytes: minimum burst size four times the 4-byte word.
func NewChannelInterleave(channels int, granularity int64) (ChannelInterleave, error) {
	if channels <= 0 {
		return ChannelInterleave{}, fmt.Errorf("mapping: %d channels", channels)
	}
	if granularity <= 0 {
		return ChannelInterleave{}, fmt.Errorf("mapping: granularity %d", granularity)
	}
	return ChannelInterleave{channels: channels, granularity: granularity}, nil
}

// Channels returns the channel count M.
func (ci ChannelInterleave) Channels() int { return ci.channels }

// Granularity returns the interleaving chunk size in bytes.
func (ci ChannelInterleave) Granularity() int64 { return ci.granularity }

// Channel returns the channel serving the byte address.
func (ci ChannelInterleave) Channel(addr int64) int {
	return int((addr / ci.granularity) % int64(ci.channels))
}

// Local returns the channel-local byte address: the address with the
// interleaving bits removed, so each channel sees a dense address space.
func (ci ChannelInterleave) Local(addr int64) int64 {
	chunk := addr / ci.granularity
	return (chunk/int64(ci.channels))*ci.granularity + addr%ci.granularity
}

// Global is the inverse of (Channel, Local): it reconstructs the system
// byte address from a channel index and a channel-local address.
func (ci ChannelInterleave) Global(channel int, local int64) int64 {
	chunk := local / ci.granularity
	return (chunk*int64(ci.channels)+int64(channel))*ci.granularity + local%ci.granularity
}

// Multiplexing selects how a channel-local address is split into bank, row
// and column.
type Multiplexing int

const (
	// RBC (row-bank-column) keeps the bank bits between row and column:
	// a sequential stream walks all columns of a row, then the same row of
	// the next bank, exposing bank-level parallelism. The paper found RBC
	// "somewhat better" and uses it for all shown results.
	RBC Multiplexing = iota
	// BRC (bank-row-column) keeps the bank bits on top: a sequential
	// stream stays inside one bank and pays a full precharge-activate on
	// every row crossing.
	BRC
)

// String returns the paper's abbreviation for the multiplexing type.
func (m Multiplexing) String() string {
	switch m {
	case RBC:
		return "RBC"
	case BRC:
		return "BRC"
	default:
		return fmt.Sprintf("Multiplexing(%d)", int(m))
	}
}

// Location is a decoded DRAM coordinate within one channel.
type Location struct {
	Bank int
	Row  int
	// Column is the word-aligned column index of the first word of the
	// access's burst.
	Column int
}

// BankMapper decodes channel-local byte addresses to DRAM coordinates.
type BankMapper struct {
	geom dram.Geometry
	mux  Multiplexing
}

// NewBankMapper builds a mapper for the geometry and multiplexing type.
func NewBankMapper(g dram.Geometry, mux Multiplexing) (BankMapper, error) {
	if err := g.Validate(); err != nil {
		return BankMapper{}, err
	}
	if mux != RBC && mux != BRC {
		return BankMapper{}, fmt.Errorf("mapping: unknown multiplexing %d", int(mux))
	}
	return BankMapper{geom: g, mux: mux}, nil
}

// Geometry returns the device geometry the mapper decodes for.
func (bm BankMapper) Geometry() dram.Geometry { return bm.geom }

// Multiplexing returns the configured multiplexing type.
func (bm BankMapper) Multiplexing() Multiplexing { return bm.mux }

// Decode splits a channel-local byte address into bank, row and column.
// Addresses wrap modulo the cluster capacity (the load model never exceeds
// it, but wrapping keeps the mapper total).
func (bm BankMapper) Decode(local int64) Location {
	g := bm.geom
	rowBytes := g.RowBytes()
	wordBytes := int64(g.WordBits) / 8

	local %= g.Bytes()
	if local < 0 {
		local += g.Bytes()
	}
	col := int((local % rowBytes) / wordBytes)
	upper := local / rowBytes
	switch bm.mux {
	case RBC:
		bank := int(upper % int64(g.Banks))
		row := int(upper / int64(g.Banks))
		return Location{Bank: bank, Row: row, Column: col}
	default: // BRC
		row := int(upper % int64(g.Rows))
		bank := int(upper / int64(g.Rows))
		return Location{Bank: bank, Row: row, Column: col}
	}
}

// Encode is the inverse of Decode for word-aligned locations.
func (bm BankMapper) Encode(loc Location) int64 {
	g := bm.geom
	rowBytes := g.RowBytes()
	wordBytes := int64(g.WordBits) / 8

	var upper int64
	switch bm.mux {
	case RBC:
		upper = int64(loc.Row)*int64(g.Banks) + int64(loc.Bank)
	default: // BRC
		upper = int64(loc.Bank)*int64(g.Rows) + int64(loc.Row)
	}
	return upper*rowBytes + int64(loc.Column)*wordBytes
}

// AddressMap combines the two decoding steps: system byte address to
// (channel, bank, row, column).
type AddressMap struct {
	Interleave ChannelInterleave
	Banks      BankMapper
}

// NewAddressMap builds the paper's address map: 16-byte channel interleave
// over the given channel count, then bank multiplexing.
func NewAddressMap(channels int, g dram.Geometry, mux Multiplexing) (AddressMap, error) {
	ci, err := NewChannelInterleave(channels, g.BurstBytes())
	if err != nil {
		return AddressMap{}, err
	}
	bm, err := NewBankMapper(g, mux)
	if err != nil {
		return AddressMap{}, err
	}
	return AddressMap{Interleave: ci, Banks: bm}, nil
}

// Decode maps a system byte address to its channel and DRAM coordinate.
func (am AddressMap) Decode(addr int64) (channel int, loc Location) {
	channel = am.Interleave.Channel(addr)
	return channel, am.Banks.Decode(am.Interleave.Local(addr))
}

// CapacityBytes returns the total capacity of the mapped memory.
func (am AddressMap) CapacityBytes() int64 {
	return int64(am.Interleave.Channels()) * am.Banks.Geometry().Bytes()
}
