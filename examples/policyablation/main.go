// Policyablation quantifies the paper's design choices one at a time on the
// same recording workload: RBC vs BRC address multiplexing, open vs closed
// page policy, and aggressive power-down vs always-on standby. It shows why
// the paper's baseline (RBC + open page + power-down) is the right corner of
// the design space for streaming video traffic.
//
// Usage:
//
//	policyablation [-format 1080p30] [-channels 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	format := flag.String("format", "1080p30", "recording format")
	channels := flag.Int("channels", 4, "channel count")
	fraction := flag.Float64("fraction", 0.1, "frame fraction to simulate")
	flag.Parse()

	w, err := core.WorkloadFor(*format)
	if err != nil {
		log.Fatal(err)
	}
	w.SampleFraction = *fraction

	run := func(mutate func(*core.MemoryConfig)) core.Result {
		mc := core.PaperMemory(*channels, 400*units.MHz)
		if mutate != nil {
			mutate(&mc)
		}
		res, err := core.Simulate(w, mc)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(nil)
	variants := []struct {
		name   string
		mutate func(*core.MemoryConfig)
	}{
		{"BRC multiplexing", func(mc *core.MemoryConfig) { mc.Mux = mapping.BRC }},
		{"closed-page policy", func(mc *core.MemoryConfig) { mc.Policy = controller.ClosedPage }},
		{"no power-down", func(mc *core.MemoryConfig) { mc.DisablePowerDown = true }},
	}

	t := report.NewTable(
		fmt.Sprintf("Design-choice ablations: %s on %d channels @ 400 MHz (baseline: RBC, open page, power-down)",
			*format, *channels),
		"configuration", "access time", "verdict", "power", "vs baseline")
	t.AddRow("baseline",
		fmt.Sprintf("%.2f ms", base.AccessTime.Milliseconds()),
		base.Verdict.String(),
		fmt.Sprintf("%.0f mW", base.TotalPower.Milliwatts()),
		"-")
	for _, v := range variants {
		res := run(v.mutate)
		timeDelta := (res.AccessTime.Seconds()/base.AccessTime.Seconds() - 1) * 100
		powerDelta := (float64(res.TotalPower)/float64(base.TotalPower) - 1) * 100
		t.AddRow(v.name,
			fmt.Sprintf("%.2f ms", res.AccessTime.Milliseconds()),
			res.Verdict.String(),
			fmt.Sprintf("%.0f mW", res.TotalPower.Milliwatts()),
			fmt.Sprintf("time %+.0f%%, power %+.0f%%", timeDelta, powerDelta))
	}
	fmt.Print(t)
	fmt.Println("\nReading the table: BRC serializes the sequential streams into single banks;")
	fmt.Println("closed page re-activates a row per burst on row-local traffic; disabling")
	fmt.Println("power-down burns active standby through every idle cycle of the frame.")
}
