// Capacityplan answers the paper's design question for a product: given a
// target recording format, which memory configurations (channel count x
// clock frequency) satisfy the real-time requirement with the 15 %
// processing margin, and what does each cost in power? It prints the full
// feasibility map and recommends the lowest-power safe configuration.
//
// Usage:
//
//	capacityplan [-format 1080p60]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/report"
)

func main() {
	format := flag.String("format", "1080p60", "recording format to plan for")
	fraction := flag.Float64("fraction", 0.1, "frame fraction to simulate")
	flag.Parse()

	w, err := core.WorkloadFor(*format)
	if err != nil {
		log.Fatal(err)
	}
	w.SampleFraction = *fraction

	t := report.NewTable(fmt.Sprintf("Feasibility map for %s recording", *format),
		"channels", "clock", "access time", "verdict", "power")

	type candidate struct {
		res core.Result
	}
	var best *candidate
	for _, ch := range core.EvaluatedChannelCounts {
		for _, freq := range dram.EvaluatedFrequencies {
			res, err := core.Simulate(w, core.PaperMemory(ch, freq))
			if err != nil {
				log.Fatal(err)
			}
			powerCell := fmt.Sprintf("%.0f mW", res.TotalPower.Milliwatts())
			if res.Verdict == core.Infeasible {
				powerCell = "-"
			}
			t.AddRow(fmt.Sprint(ch), freq.String(),
				fmt.Sprintf("%.2f ms", res.AccessTime.Milliseconds()),
				res.Verdict.String(), powerCell)
			if res.Verdict == core.Feasible {
				if best == nil || res.TotalPower < best.res.TotalPower {
					best = &candidate{res: res}
				}
			}
		}
	}
	fmt.Print(t)
	fmt.Println()
	if best == nil {
		fmt.Printf("No evaluated configuration records %s in real time.\n", *format)
		fmt.Println("The paper's conclusion applies: beyond-HD loads need more channels or novel memory policies.")
		return
	}
	fmt.Printf("Recommended: %d channels @ %v — %.2f ms per frame (budget %v) at %.0f mW.\n",
		best.res.Channels, best.res.Freq,
		best.res.AccessTime.Milliseconds(), best.res.FramePeriod,
		best.res.TotalPower.Milliwatts())
}
