// Faulttolerance demonstrates the fault-injection and graceful-degradation
// subsystem: seeded hardware faults (channel dropout, thermal refresh
// derate, transient ECC read errors, controller stall jitter) are injected
// into a sustained 1080p30 recording, and the degradation engine keeps the
// recorder running — re-interleaving traffic over the surviving channels
// and stepping the workload down (frame rate, then stabilization, then
// resolution) until the real-time verdict recovers.
//
// Every scenario is deterministic: the same seed produces a byte-identical
// QoS report, whether the channels simulate serially or in parallel.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
)

func main() {
	fraction := flag.Float64("fraction", 0.05, "fraction of each frame to simulate (QoS extrapolates)")
	frames := flag.Int("frames", 10, "frame slots per scenario")
	seed := flag.Uint64("seed", 1, "fault plan seed")
	flag.Parse()

	w, err := core.WorkloadFor("1080p30")
	if err != nil {
		log.Fatal(err)
	}
	w.SampleFraction = *fraction
	period := w.Profile.Format.FramePeriod().Cycles(core.PaperFrequency)
	midFrame := int64(float64(period)**fraction) / 2

	scenarios := []struct {
		name     string
		channels int
		plan     fault.Plan
	}{
		{
			// One of four channels dies mid-frame; three survivors still
			// carry 1080p30, so quality is untouched.
			name:     "dropout, 1 of 4 channels",
			channels: 4,
			plan:     fault.Plan{Seed: *seed, DropChannel: 1, DropAtCycle: midFrame},
		},
		{
			// One of two channels dies; the survivor cannot carry 1080p30,
			// so the ladder sheds frame rate, stabilization and resolution
			// until the recorder is real-time again.
			name:     "dropout, 1 of 2 channels (full ladder)",
			channels: 2,
			plan:     fault.Plan{Seed: *seed, DropChannel: 1, DropAtCycle: midFrame},
		},
		{
			// A thermal event doubles the refresh rate and the DRAM starts
			// flipping bits: ECC read-retries and refresh steal bandwidth,
			// but four channels absorb it.
			name:     "thermal derate + transient bit errors",
			channels: 4,
			plan:     fault.Plan{Seed: *seed, DerateAtCycle: midFrame, ReadErrorRate: 0.01},
		},
		{
			// Controller arbitration jitter: random stalls before requests
			// are attended.
			name:     "controller stall jitter",
			channels: 4,
			plan:     fault.Plan{Seed: *seed, StallRate: 0.01, StallMaxCycles: 64},
		},
	}

	for i, sc := range scenarios {
		mc := core.PaperMemory(sc.channels, core.PaperFrequency)
		plan := sc.plan
		mc.Faults = &plan
		res, err := core.SimulateDegraded(w, mc, *frames)
		if err != nil {
			log.Fatal(err)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s (%d channel(s) @ %v) ===\n", sc.name, sc.channels, core.PaperFrequency)
		fmt.Printf("verdict: %s, final level %d, final format %s, power %.0f mW\n",
			res.Verdict, res.FinalLevel, res.FinalFormat.Name, res.TotalPower.Milliwatts())
		fmt.Print(res.QoS.Report())
	}
}
