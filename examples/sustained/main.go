// Sustained runs the recorder the way a device does — every frame's
// traffic paced across its frame slot, the memory dropping into power-down
// in each gap — instead of the figures' saturated one-frame bursts. It
// reports, per format on its recommended configuration:
//
//   - whether the memory keeps up slot after slot (lateness),
//   - the power-down residency aggressive power management achieves, and
//   - the realistic sustained power against the frame-burst estimate,
//     which misses the per-transaction wake costs (tXP plus the CAS
//     pipeline restart in active standby).
//
// Usage:
//
//	sustained [-frames 3] [-fraction 0.1]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	frames := flag.Int("frames", 3, "frame slots to simulate")
	fraction := flag.Float64("fraction", 0.1, "per-frame sampling fraction")
	flag.Parse()

	// The paper's recommended configuration per format (conclusions).
	configs := []struct {
		format   string
		channels int
	}{
		{"720p30", 1},
		{"720p60", 2},
		{"1080p30", 4},
		{"1080p60", 8},
		{"2160p30", 8},
	}

	t := report.NewTable(
		fmt.Sprintf("Sustained recording, %d paced frame slots @ 400 MHz", *frames),
		"format", "channels", "keeps up", "PD residency", "PD exits/frame",
		"sustained power", "burst estimate", "wake cost")
	for _, c := range configs {
		w, err := core.WorkloadFor(c.format)
		if err != nil {
			log.Fatal(err)
		}
		w.SampleFraction = *fraction
		mem := core.PaperMemory(c.channels, 400*units.MHz)
		sus, err := core.SimulateSustained(w, mem, *frames)
		if err != nil {
			log.Fatal(err)
		}
		sat, err := core.Simulate(w, mem)
		if err != nil {
			log.Fatal(err)
		}
		keeps := "yes"
		if sus.Lateness > 0 {
			keeps = fmt.Sprintf("late by %v", sus.Lateness)
		}
		t.AddRow(c.format, fmt.Sprint(c.channels), keeps,
			fmt.Sprintf("%.0f%%", sus.PowerDownResidency*100),
			fmt.Sprintf("%.0fk", float64(sus.PowerDownExits)/float64(*frames)/1000),
			fmt.Sprintf("%.0f mW", sus.TotalPower.Milliwatts()),
			fmt.Sprintf("%.0f mW", sat.TotalPower.Milliwatts()),
			fmt.Sprintf("%+.0f%%", (float64(sus.TotalPower)/float64(sat.TotalPower)-1)*100))
	}
	fmt.Print(t)
	fmt.Println("\nThe frame-burst methodology (paper Fig. 5) underestimates sustained power by")
	fmt.Println("the wake costs of per-transaction power-down — the price of entering power-down")
	fmt.Println("'after the first idle clock cycle'. Batching transactions or relaxing the")
	fmt.Println("power-down trigger trades this overhead against power-down residency.")
}
