// Cachedemo reproduces the introduction's cache argument: a software
// H.264/AVC encoder's raw access stream reaches thousands of GB/s at HDTV
// rates (the paper cites 5570 GB/s for 720p30, reference [2]), yet with
// appropriate caching the execution-memory load of the whole recording
// chain collapses to ~1.9 GB/s — because full-search motion estimation
// re-reads the same search window for every candidate motion vector, and
// neighbouring macroblocks' windows overlap enormously.
//
// The demo drives a synthetic full-search motion-estimation access pattern
// (every candidate vector reads a full 16x16 block from each reference
// frame) through the set-associative cache model and reports the raw demand
// versus the miss traffic that actually reaches the execution memory.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

func main() {
	cacheKB := flag.Int64("cache-kb", 512, "cache capacity in KiB")
	mbRows := flag.Int("mb-rows", 2, "macroblock rows to simulate (results scale up)")
	searchRange := flag.Int("range", 24, "motion search range in pixels (+-)")
	refs := flag.Int("refs", 4, "reference frames searched")
	flag.Parse()

	prof, err := video.ProfileFor("720p30")
	if err != nil {
		log.Fatal(err)
	}
	c, err := cache.New(cache.Config{SizeBytes: *cacheKB * 1024, LineBytes: 64, Ways: 8})
	if err != nil {
		log.Fatal(err)
	}

	const (
		mb       = 16
		accessSz = 16 // a NEON-class SIMD load
	)
	width := prof.Format.Width
	cols := prof.Format.MacroblockCols()

	var rawBytes int64
	readBlock := func(base int64, x, y int) {
		for r := 0; r < mb; r++ {
			rowAddr := base + int64(y+r)*int64(width) + int64(x)
			for o := 0; o < mb; o += accessSz {
				c.Access(rowAddr+int64(o), false)
				rawBytes += accessSz
			}
		}
	}
	writeBlock := func(base int64, x, y int) {
		for r := 0; r < mb; r++ {
			rowAddr := base + int64(y+r)*int64(width) + int64(x)
			for o := 0; o < mb; o += accessSz {
				c.Access(rowAddr+int64(o), true)
				rawBytes += accessSz
			}
		}
	}

	// Full-search motion estimation: for every macroblock, every candidate
	// vector in the +-range window, against every reference frame, compare
	// the current block with the displaced reference block.
	curBase := int64(1) << 26
	reconBase := int64(1) << 27
	refBase := func(i int) int64 { return int64(i) << 28 }
	sr := *searchRange
	for row := 0; row < *mbRows; row++ {
		y := row*mb + sr // keep windows inside the frame
		for col := 0; col < cols; col++ {
			x := clamp(col*mb, sr, width-sr-mb)
			for ref := 0; ref < *refs; ref++ {
				for dy := -sr; dy <= sr; dy += 2 {
					for dx := -sr; dx <= sr; dx += 2 {
						readBlock(refBase(ref), x+dx, y+dy)
						readBlock(curBase, x, y)
					}
				}
			}
			writeBlock(reconBase, x, y)
		}
	}
	c.Flush()

	mbCount := *mbRows * cols
	scale := float64(prof.Format.Macroblocks()) / float64(mbCount)
	fps := float64(prof.Format.FPS)
	rawPerSec := units.Bandwidth(float64(rawBytes) * scale * fps)
	missPerSec := units.Bandwidth(float64(c.MissBytes()) * scale * fps)

	l, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Synthetic full-search motion estimation, %v, +-%d px, %d reference frames,\n",
		prof.Format, sr, *refs)
	fmt.Printf("%d KiB 8-way cache:\n", *cacheKB)
	fmt.Printf("  raw encoder demand:        %8.0f GB/s (every candidate re-reads its block)\n", rawPerSec.GBps())
	fmt.Printf("  cache hit rate:            %8.2f %%\n", c.Stats().HitRate()*100)
	fmt.Printf("  execution-memory misses:   %8.2f GB/s\n", missPerSec.GBps())
	fmt.Printf("  reduction:                 %8.0fx\n", rawPerSec.GBps()/missPerSec.GBps())
	fmt.Println()
	fmt.Printf("Whole recording chain after caching (Table I): %.2f GB/s\n", l.Bandwidth().GBps())
	fmt.Println("The paper's point: caches absorb the encoder's reuse; only the streaming")
	fmt.Println("working set of Fig. 1 reaches the multi-channel execution memory.")
}

// clamp keeps v within [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
