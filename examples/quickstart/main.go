// Quickstart: simulate full-HD video recording (1080p30, H.264 level 4) on
// the paper's 4-channel 400 MHz mobile DDR memory and print the access
// time, real-time verdict and power — the headline result of the abstract
// ("4.3 GB/s ... fulfilled with four 32-bit memory channels operating at
// 400 MHz and consuming 345 mW").
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	// A workload is a frame format paired with its H.264 level.
	workload, err := core.WorkloadFor("1080p30")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's baseline memory: RBC interleaving, open page,
	// aggressive power-down.
	memory := core.PaperMemory(4, 400*units.MHz)

	result, err := core.Simulate(workload, memory)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Recording %v (H.264 level %s)\n", result.Format, result.Level.Number)
	fmt.Printf("  memory traffic: %d bytes/frame = %.2f GB/s sustained\n",
		result.FrameBytes, result.RequiredBandwidth.GBps())
	fmt.Printf("  memory config:  %d channels @ %v (%.1f GB/s peak)\n",
		result.Channels, result.Freq, result.PeakBandwidth.GBps())
	fmt.Printf("  access time:    %v of the %v frame budget -> %v\n",
		result.AccessTime, result.FramePeriod, result.Verdict)
	fmt.Printf("  power:          %.0f mW (of which interface %.1f mW)\n",
		result.TotalPower.Milliwatts(), result.InterfacePower.Milliwatts())
	fmt.Printf("  efficiency:     %.0f%% of peak bandwidth sustained\n",
		result.Efficiency*100)
}
