// Multitasking explores the paper's remark that "the system rarely runs
// only a single use case": a camera device records while playing back an
// earlier clip (picture-in-picture review). Two organizations of the same
// 4-channel 400 MHz memory are compared:
//
//	(a) full interleave — both use cases merged onto all four channels;
//	(b) independent clusters — recording on three channels, playback on
//	    one (the conclusions' channel-cluster organization).
//
// Full interleave finishes the combined traffic sooner (all bandwidth is
// shared); clusters isolate the use cases from each other — playback's
// access time no longer depends on the recorder's traffic at all.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dram"
	"repro/internal/load"
	"repro/internal/memsys"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/usecase"
	"repro/internal/video"
)

func main() {
	fraction := flag.Float64("fraction", 0.1, "frame fraction to simulate")
	format := flag.String("format", "720p30", "format recorded and played back")
	flag.Parse()

	prof, err := video.ProfileFor(*format)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := usecase.New(prof, usecase.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	pb, err := usecase.NewPlayback(prof, usecase.DefaultPlaybackParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Concurrent use cases at %v: recording %.2f GB/s + playback %.2f GB/s\n\n",
		prof.Format, rec.Bandwidth().GBps(), pb.Bandwidth().GBps())

	geom := dram.DefaultGeometry()
	period := prof.Format.FramePeriod()
	t := report.NewTable("One 4-channel 400 MHz memory, two organizations",
		"organization", "use case", "access time", "frame budget", "note")

	// (a) full interleave: both generators share the address space.
	recGen, err := load.New(rec, 4, geom, load.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var top int64
	for _, b := range recGen.Buffers() {
		if end := b.Base + b.Size; end > top {
			top = end
		}
	}
	pbGen, err := load.NewPlayback(pb, 4, geom, load.Config{BaseAddress: top})
	if err != nil {
		log.Fatal(err)
	}
	recSrc, err := recGen.Frame(*fraction)
	if err != nil {
		log.Fatal(err)
	}
	pbSrc, err := pbGen.Frame(*fraction)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := memsys.New(memsys.PaperConfig(4, 400*units.MHz))
	if err != nil {
		log.Fatal(err)
	}
	res, err := shared.Run(memsys.Merge(recSrc, pbSrc))
	if err != nil {
		log.Fatal(err)
	}
	combined := units.Duration(float64(res.Time) / *fraction)
	t.AddRow("4-ch interleave", "record + playback",
		fmt.Sprintf("%.2f ms", combined.Milliseconds()),
		fmt.Sprintf("%.1f ms", period.Milliseconds()),
		"shared bandwidth, shared interference")

	// (b) clusters: 3 channels record, 1 plays back; each workload is
	// regenerated for its cluster width.
	clusters, err := memsys.NewClustered(memsys.PaperConfig(0, 400*units.MHz), []memsys.ClusterSpec{
		{Name: "record", Channels: 3},
		{Name: "playback", Channels: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	recGen3, err := load.New(rec, 3, geom, load.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pbGen1, err := load.NewPlayback(pb, 1, geom, load.Config{})
	if err != nil {
		log.Fatal(err)
	}
	recSrc3, err := recGen3.Frame(*fraction)
	if err != nil {
		log.Fatal(err)
	}
	pbSrc1, err := pbGen1.Frame(*fraction)
	if err != nil {
		log.Fatal(err)
	}
	results, err := clusters.Run([]memsys.Source{recSrc3, pbSrc1})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		scaled := units.Duration(float64(r.Result.Time) / *fraction)
		note := "isolated: immune to the other use case"
		if verdictOf(scaled, period) != "ok" {
			note = "over budget — resize the cluster"
		}
		t.AddRow(fmt.Sprintf("%d-ch cluster %q", r.Spec.Channels, r.Spec.Name), r.Spec.Name,
			fmt.Sprintf("%.2f ms", scaled.Milliseconds()),
			fmt.Sprintf("%.1f ms", period.Milliseconds()),
			note)
	}
	fmt.Print(t)
	fmt.Println("\nInterleaving shares all bandwidth; clustering trades peak sharing for")
	fmt.Println("isolation and per-cluster power management — the organization question the")
	fmt.Println("paper's conclusions raise for memories beyond the HDTV requirement.")
}

func verdictOf(access, budget units.Duration) string {
	if access <= units.Duration(0.85*float64(budget)) {
		return "ok"
	}
	return "tight"
}
