// Uhdclusters explores the paper's future-work proposal from the
// conclusions: "it may be necessary to divide very large multi-channel
// memories into independent channel clusters, each consisting of reasonable
// number of channels", with aggressive power-down for energy efficiency.
//
// The experiment: a device ships an 8-channel die-stacked memory for its
// worst-case load (2160p recording). For lighter loads, compare
//
//	(a) interleaving over all 8 channels (every channel clocks and serves
//	    a sliver of the traffic), against
//	(b) serving the load on a k-channel cluster sized for it, with the
//	    remaining channels' clusters in deep power-down (self-refresh,
//	    interface clock gated).
//
// Clustering trades a longer (still real-time) access time for lower power.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/units"
)

const totalChannels = 8

func main() {
	fraction := flag.Float64("fraction", 0.1, "frame fraction to simulate")
	flag.Parse()

	speed, err := dram.Resolve(dram.DefaultGeometry(), dram.DefaultTiming(), 400*units.MHz)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := power.Default(speed)
	if err != nil {
		log.Fatal(err)
	}
	deepIdle := pm.DeepIdlePower()

	t := report.NewTable(
		"Channel clustering on an 8-channel 400 MHz memory (idle clusters in deep power-down)",
		"format", "organization", "access time", "verdict", "power", "saving")

	for _, format := range []string{"720p30", "720p60", "1080p30", "1080p60", "2160p30"} {
		w, err := core.WorkloadFor(format)
		if err != nil {
			log.Fatal(err)
		}
		w.SampleFraction = *fraction

		// (a) full interleave over all 8 channels.
		full, err := core.Simulate(w, core.PaperMemory(totalChannels, 400*units.MHz))
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(format, "8-ch interleave",
			fmt.Sprintf("%.2f ms", full.AccessTime.Milliseconds()),
			full.Verdict.String(),
			fmt.Sprintf("%.0f mW", full.TotalPower.Milliwatts()), "-")

		// (b) the smallest cluster that still records safely.
		for _, k := range []int{1, 2, 4, 8} {
			res, err := core.Simulate(w, core.PaperMemory(k, 400*units.MHz))
			if err != nil {
				log.Fatal(err)
			}
			if res.Verdict != core.Feasible {
				continue
			}
			idle := units.Power(float64(totalChannels-k)) * deepIdle
			clustered := res.TotalPower + idle
			saving := (1 - float64(clustered)/float64(full.TotalPower)) * 100
			t.AddRow("", fmt.Sprintf("%d-ch cluster + %d idle", k, totalChannels-k),
				fmt.Sprintf("%.2f ms", res.AccessTime.Milliseconds()),
				res.Verdict.String(),
				fmt.Sprintf("%.0f mW", clustered.Milliwatts()),
				fmt.Sprintf("%+.0f%%", -saving))
			break
		}
	}
	fmt.Print(t)
	fmt.Printf("\nDeep-idle cluster power: %.2f mW per channel (self-refresh, gated interface).\n",
		deepIdle.Milliwatts())
	fmt.Println("Lighter-than-worst-case loads run cheaper on a right-sized cluster, exactly")
	fmt.Println("the organization the paper's conclusions propose for beyond-HD devices.")
}
